(* End-to-end tests for the PASO system: the §4 basic strategy over the
   full simulated stack. *)

open Paso

let v_int i = Value.Int i
let v_sym s = Value.Sym s

let make ?(n = 6) ?(lambda = 2) ?(storage = Storage.Hash)
    ?(classing = Obj_class.By_head) ?(use_read_groups = true)
    ?(policy = Policy.static) () =
  System.create
    {
      System.default_config with
      n;
      lambda;
      storage;
      classing;
      use_read_groups;
      policy;
    }

let insert_sync sys ~machine fields =
  let done_ = ref false in
  System.insert sys ~machine fields ~on_done:(fun () -> done_ := true);
  System.run sys;
  Alcotest.(check bool) "insert completed" true !done_

let read_sync sys ~machine tmpl =
  let result = ref None and fired = ref false in
  System.read sys ~machine tmpl ~on_done:(fun r ->
      result := r;
      fired := true);
  System.run sys;
  Alcotest.(check bool) "read returned" true !fired;
  !result

let read_del_sync sys ~machine tmpl =
  let result = ref None and fired = ref false in
  System.read_del sys ~machine tmpl ~on_done:(fun r ->
      result := r;
      fired := true);
  System.run sys;
  Alcotest.(check bool) "read&del returned" true !fired;
  !result

let check_no_violations sys =
  let vs = Semantics.check (System.history sys) in
  let msg = String.concat "; " (List.map (Format.asprintf "%a" Semantics.pp_violation) vs) in
  Alcotest.(check string) "no semantics violations" "" msg

(* --- basic primitives ----------------------------------------------------- *)

let test_insert_read () =
  let sys = make () in
  insert_sync sys ~machine:0 [ v_sym "job"; v_int 42 ];
  let r = read_sync sys ~machine:3 (Template.headed "job" [ Template.Any ]) in
  (match r with
  | Some o ->
      Alcotest.(check int) "field value" 42
        (match Pobj.field o 1 with Value.Int i -> i | _ -> -1)
  | None -> Alcotest.fail "read failed");
  check_no_violations sys

let test_read_missing_fails () =
  let sys = make () in
  insert_sync sys ~machine:0 [ v_sym "job"; v_int 1 ];
  let r = read_sync sys ~machine:1 (Template.headed "nothing" [ Template.Any ]) in
  Alcotest.(check bool) "fail" true (r = None);
  check_no_violations sys

let test_read_is_nondestructive () =
  let sys = make () in
  insert_sync sys ~machine:0 [ v_sym "job"; v_int 1 ];
  let tmpl = Template.headed "job" [ Template.Any ] in
  Alcotest.(check bool) "first read" true (read_sync sys ~machine:1 tmpl <> None);
  Alcotest.(check bool) "second read" true (read_sync sys ~machine:2 tmpl <> None);
  check_no_violations sys

let test_read_del_consumes () =
  let sys = make () in
  insert_sync sys ~machine:0 [ v_sym "job"; v_int 1 ];
  let tmpl = Template.headed "job" [ Template.Any ] in
  Alcotest.(check bool) "take succeeds" true (read_del_sync sys ~machine:1 tmpl <> None);
  Alcotest.(check bool) "gone afterwards" true (read_sync sys ~machine:2 tmpl = None);
  Alcotest.(check bool) "second take fails" true (read_del_sync sys ~machine:3 tmpl = None);
  check_no_violations sys

let test_read_del_oldest_first () =
  let sys = make () in
  List.iter (fun i -> insert_sync sys ~machine:0 [ v_sym "q"; v_int i ]) [ 10; 20; 30 ];
  let tmpl = Template.headed "q" [ Template.Any ] in
  let taken = List.map (fun _ -> Option.get (read_del_sync sys ~machine:1 tmpl)) [ (); (); () ] in
  let values = List.map (fun o -> match Pobj.field o 1 with Value.Int i -> i | _ -> -1) taken in
  Alcotest.(check (list int)) "FIFO per class" [ 10; 20; 30 ] values;
  check_no_violations sys

let test_selective_matching () =
  let sys = make () in
  insert_sync sys ~machine:0 [ v_sym "t"; v_int 5; v_sym "low" ];
  insert_sync sys ~machine:0 [ v_sym "t"; v_int 50; v_sym "high" ];
  let tmpl =
    Template.headed "t" [ Template.Pred ("gt10", function Value.Int i -> i > 10 | _ -> false); Template.Any ]
  in
  match read_sync sys ~machine:1 tmpl with
  | Some o -> Alcotest.(check bool) "predicate respected" true (Pobj.field o 2 = v_sym "high")
  | None -> Alcotest.fail "predicate read failed"

let test_range_query_tree_store () =
  let sys = make ~storage:Storage.Tree ~classing:Obj_class.By_signature () in
  List.iter (fun i -> insert_sync sys ~machine:0 [ v_int i; v_sym "row" ]) [ 1; 5; 9; 13 ];
  let tmpl = Template.make [ Template.Range (v_int 6, v_int 12); Template.Any ] in
  (match read_sync sys ~machine:2 tmpl with
  | Some o -> Alcotest.(check bool) "in range" true (Pobj.field o 0 = v_int 9)
  | None -> Alcotest.fail "range read failed");
  check_no_violations sys

let test_write_group_is_basic_support () =
  let sys = make ~n:8 ~lambda:2 () in
  insert_sync sys ~machine:0 [ v_sym "c"; v_int 1 ];
  let cls = List.hd (System.known_classes sys) in
  let name = cls.Obj_class.name in
  Alcotest.(check (list int))
    "wg = B(C) under static policy"
    (System.basic_support sys ~cls:name)
    (System.write_group sys ~cls:name);
  Alcotest.(check int) "|B(C)| = lambda+1" 3
    (List.length (System.basic_support sys ~cls:name))

let test_local_read_no_messages () =
  let sys = make ~n:4 ~lambda:3 () in
  (* λ+1 = n: every machine is in every write group, so reads are local. *)
  insert_sync sys ~machine:0 [ v_sym "c"; v_int 1 ];
  let msgs_before = Sim.Stats.count (System.stats sys) "net.msgs" in
  let r = read_sync sys ~machine:2 (Template.headed "c" [ Template.Any ]) in
  Alcotest.(check bool) "found" true (r <> None);
  Alcotest.(check int) "no messages for local read" msgs_before
    (Sim.Stats.count (System.stats sys) "net.msgs");
  Alcotest.(check int) "local read counted" 1
    (Sim.Stats.count (System.stats sys) "paso.local_reads")

let test_read_group_size () =
  let sys = make ~n:8 ~lambda:2 () in
  insert_sync sys ~machine:0 [ v_sym "c"; v_int 1 ];
  let cls = (List.hd (System.known_classes sys)).Obj_class.name in
  Alcotest.(check int) "rg size = lambda+1" 3 (List.length (System.read_group sys ~cls))

(* --- blocking operations ---------------------------------------------------- *)

let test_blocking_read_wakes () =
  let sys = make () in
  let got = ref None in
  System.read_blocking sys ~machine:1 (Template.headed "later" [ Template.Any ])
    ~on_done:(fun o -> got := Some o);
  System.run sys;
  Alcotest.(check bool) "still blocked" true (!got = None);
  Alcotest.(check int) "one marker" 1 (System.waiter_count sys);
  insert_sync sys ~machine:0 [ v_sym "later"; v_int 7 ];
  Alcotest.(check bool) "woken by insert" true (!got <> None);
  Alcotest.(check int) "marker consumed" 0 (System.waiter_count sys)

let test_blocking_take_exclusive () =
  let sys = make () in
  let winners = ref 0 in
  for m = 1 to 3 do
    System.read_del_blocking sys ~machine:m (Template.headed "tok" [ Template.Any ])
      ~on_done:(fun _ -> incr winners)
  done;
  System.run sys;
  insert_sync sys ~machine:0 [ v_sym "tok"; v_int 1 ];
  Alcotest.(check int) "exactly one taker wins" 1 !winners;
  Alcotest.(check int) "losers re-armed" 2 (System.waiter_count sys);
  insert_sync sys ~machine:0 [ v_sym "tok"; v_int 2 ];
  Alcotest.(check int) "second winner" 2 !winners;
  check_no_violations sys

let test_blocking_poll () =
  let sys = make () in
  let got = ref None in
  System.read_blocking ~poll:50.0 sys ~machine:1
    (Template.headed "poll" [ Template.Any ])
    ~on_done:(fun o -> got := Some o);
  System.run_until sys 500.0;
  Alcotest.(check bool) "still polling" true (!got = None);
  System.insert sys ~machine:0 [ v_sym "poll"; v_int 1 ] ~on_done:(fun () -> ());
  System.run sys;
  Alcotest.(check bool) "poll finds it" true (!got <> None);
  Alcotest.(check bool) "retries counted" true
    (Sim.Stats.count (System.stats sys) "paso.poll_retries" > 0)

(* --- faults ------------------------------------------------------------------ *)

let test_crash_non_member_harmless () =
  let sys = make ~n:8 ~lambda:2 () in
  insert_sync sys ~machine:0 [ v_sym "c"; v_int 1 ];
  let cls = (List.hd (System.known_classes sys)).Obj_class.name in
  let outside =
    List.find (fun m -> not (List.mem m (System.basic_support sys ~cls)))
      (List.init 8 Fun.id)
  in
  System.crash sys ~machine:outside;
  System.run sys;
  let reader = List.find (fun m -> m <> outside) (List.init 8 Fun.id) in
  Alcotest.(check bool) "data intact" true
    (read_sync sys ~machine:reader (Template.headed "c" [ Template.Any ]) <> None)

let test_crash_lambda_members_data_survives () =
  let sys = make ~n:8 ~lambda:2 () in
  insert_sync sys ~machine:0 [ v_sym "c"; v_int 1 ];
  let cls = (List.hd (System.known_classes sys)).Obj_class.name in
  let basic = System.basic_support sys ~cls in
  (* Crash λ = 2 of the 3 basic supporters. *)
  let victims = [ List.nth basic 0; List.nth basic 1 ] in
  List.iter (fun m -> System.crash sys ~machine:m) victims;
  System.run sys;
  Alcotest.(check int) "one replica left" 1 (List.length (System.write_group sys ~cls));
  let reader = List.find (fun m -> not (List.mem m victims)) (List.init 8 Fun.id) in
  Alcotest.(check bool) "data survives lambda crashes" true
    (read_sync sys ~machine:reader (Template.headed "c" [ Template.Any ]) <> None);
  Alcotest.(check (list (pair string int))) "fault-tolerance condition holds" []
    (System.check_fault_tolerance sys);
  check_no_violations sys

let test_recovery_rejoins_and_restores () =
  let sys = make ~n:8 ~lambda:2 () in
  insert_sync sys ~machine:0 [ v_sym "c"; v_int 1 ];
  let cls = (List.hd (System.known_classes sys)).Obj_class.name in
  let victim = List.hd (System.basic_support sys ~cls) in
  System.crash sys ~machine:victim;
  System.run sys;
  Alcotest.(check int) "wg shrank" 2 (List.length (System.write_group sys ~cls));
  System.recover sys ~machine:victim;
  System.run sys;
  Alcotest.(check int) "wg restored after init phase" 3
    (List.length (System.write_group sys ~cls));
  (* The rejoined machine holds the data again: local read possible. *)
  let msgs_before = Sim.Stats.count (System.stats sys) "net.msgs" in
  let r = read_sync sys ~machine:victim (Template.headed "c" [ Template.Any ]) in
  Alcotest.(check bool) "found locally" true (r <> None);
  Alcotest.(check int) "no messages" msgs_before
    (Sim.Stats.count (System.stats sys) "net.msgs")

let test_insert_during_failures () =
  let sys = make ~n:8 ~lambda:2 () in
  insert_sync sys ~machine:0 [ v_sym "c"; v_int 1 ];
  let cls = (List.hd (System.known_classes sys)).Obj_class.name in
  let victim = List.hd (System.basic_support sys ~cls) in
  System.crash sys ~machine:victim;
  System.run sys;
  let writer = List.find (fun m -> m <> victim) (List.init 8 Fun.id) in
  insert_sync sys ~machine:writer [ v_sym "c"; v_int 2 ];
  System.recover sys ~machine:victim;
  System.run sys;
  (* The recovered machine's snapshot includes the insert made while it
     was down. *)
  let r =
    read_sync sys ~machine:victim (Template.headed "c" [ Template.Eq (v_int 2) ])
  in
  Alcotest.(check bool) "catch-up via state transfer" true (r <> None);
  check_no_violations sys

let test_crashed_machine_rejects_ops () =
  let sys = make () in
  System.crash sys ~machine:2;
  System.run sys;
  Alcotest.check_raises "insert on dead machine"
    (Invalid_argument "System.insert: machine is down") (fun () ->
      System.insert sys ~machine:2 [ v_int 1 ] ~on_done:(fun () -> ()))

let test_fault_tolerance_violation_detected () =
  let sys = make ~n:6 ~lambda:1 () in
  insert_sync sys ~machine:0 [ v_sym "c"; v_int 1 ];
  let cls = (List.hd (System.known_classes sys)).Obj_class.name in
  (* Crash both basic supporters: more than λ simultaneous failures. *)
  List.iter (fun m -> System.crash sys ~machine:m) (System.basic_support sys ~cls);
  System.run sys;
  Alcotest.(check bool) "violation reported" true
    (System.check_fault_tolerance sys <> []);
  Alcotest.(check int) "class loss recorded" 1
    (Sim.Stats.count (System.stats sys) "faults.class_losses")

(* --- Figure 1 exactness (the E1 headline, guarded by the test suite) ---------- *)

let test_insert_cost_matches_closed_form () =
  let sys = make ~n:8 ~lambda:2 () in
  (* Prefill so the class and its write group already exist. *)
  insert_sync sys ~machine:0 [ v_sym "f1"; v_int 0 ];
  let cm = (System.config sys).System.cost in
  let stats = System.stats sys in
  let before = Sim.Stats.total stats "net.msg_cost" in
  let o =
    Pobj.make ~uid:(Uid.make ~machine:1 ~serial:0) [ v_sym "f1"; v_int 1 ]
  in
  let cls = System.class_of_obj sys o in
  System.insert sys ~machine:1 [ v_sym "f1"; v_int 1 ] ~on_done:(fun () -> ());
  System.run sys;
  let measured = Sim.Stats.total stats "net.msg_cost" -. before in
  let expected =
    Net.Cost_model.gcast_cost cm ~group_size:3
      ~msg_size:(Server.msg_size (Server.Store { cls; obj = o }))
      ~resp_size:0
  in
  Alcotest.(check (float 1e-9)) "insert msg-cost = alpha(2g+1) + beta(mg+r)" expected
    measured

let test_remote_read_cost_matches_closed_form () =
  let sys = make ~n:8 ~lambda:2 () in
  insert_sync sys ~machine:0 [ v_sym "f1"; v_int 7 ];
  let cls = (List.hd (System.known_classes sys)).Obj_class.name in
  let outside =
    List.find (fun m -> not (List.mem m (System.basic_support sys ~cls)))
      (List.init 8 Fun.id)
  in
  let cm = (System.config sys).System.cost in
  let stats = System.stats sys in
  let before = Sim.Stats.total stats "net.msg_cost" in
  let tmpl = Template.headed "f1" [ Template.Any ] in
  let got = ref None in
  System.read sys ~machine:outside tmpl ~on_done:(fun r -> got := r);
  System.run sys;
  let measured = Sim.Stats.total stats "net.msg_cost" -. before in
  let resp_size = Pobj.size (Option.get !got) in
  let expected =
    Net.Cost_model.gcast_cost cm ~group_size:3
      ~msg_size:(Server.msg_size (Server.Mem_read { cls; tmpl }))
      ~resp_size
  in
  Alcotest.(check (float 1e-9)) "remote read msg-cost = closed form" expected measured

(* --- eager reads and TTL markers ------------------------------------------------ *)

let test_eager_reads_lower_latency () =
  (* unit_work large: the read group takes a long time to fully flush,
     but the first responder's answer can come back early. *)
  let cfg ~eager =
    { System.default_config with n = 8; lambda = 3; unit_work = 4000.0;
      eager_reads = eager }
  in
  let latency ~eager =
    let sys = System.create (cfg ~eager) in
    insert_sync sys ~machine:0 [ v_sym "c"; v_int 1 ];
    let cls = (List.hd (System.known_classes sys)).Obj_class.name in
    let outside =
      List.find (fun m -> not (List.mem m (System.basic_support sys ~cls)))
        (List.init 8 Fun.id)
    in
    let t0 = System.now sys in
    let t1 = ref t0 in
    System.read sys ~machine:outside (Template.headed "c" [ Template.Any ])
      ~on_done:(fun r ->
        Alcotest.(check bool) "found" true (r <> None);
        t1 := System.now sys);
    System.run sys;
    !t1 -. t0
  in
  let slow = latency ~eager:false and fast = latency ~eager:true in
  Alcotest.(check bool)
    (Printf.sprintf "eager %.0f < standard %.0f" fast slow)
    true (fast < slow)

let test_ttl_marker_expires () =
  let sys = make () in
  let result = ref (Some (Pobj.make ~uid:(Uid.make ~machine:9 ~serial:9) [ v_int 0 ])) in
  System.read_blocking_ttl sys ~ttl:5000.0 ~machine:1
    (Template.headed "never" [ Template.Any ])
    ~on_done:(fun r -> result := r);
  System.run sys;
  Alcotest.(check bool) "expired with None" true (!result = None);
  Alcotest.(check int) "marker gone" 0 (System.waiter_count sys);
  Alcotest.(check int) "expiry counted" 1
    (Sim.Stats.count (System.stats sys) "paso.marker_expiries")

let test_ttl_marker_satisfied_in_time () =
  let sys = make () in
  let result = ref None in
  System.read_blocking_ttl sys ~ttl:1.0e7 ~machine:1
    (Template.headed "soon" [ Template.Any ])
    ~on_done:(fun r -> result := r);
  insert_sync sys ~machine:0 [ v_sym "soon"; v_int 1 ];
  Alcotest.(check bool) "satisfied" true (!result <> None);
  System.run sys;
  Alcotest.(check int) "no expiry fired" 0
    (Sim.Stats.count (System.stats sys) "paso.marker_expiries")

let test_ttl_expired_take_reinserts () =
  (* Arrange the marker to expire while the woken take's gcast is in
     flight: the consumed object must be re-inserted, not lost. *)
  let sys = make () in
  let result = ref (Some (Pobj.make ~uid:(Uid.make ~machine:9 ~serial:9) [ v_int 0 ])) in
  System.read_del_blocking_ttl sys ~ttl:14000.0 ~machine:1
    (Template.headed "tok" [ Template.Any ])
    ~on_done:(fun r -> result := r);
  (* With the distributed-marker protocol, the wake message and the
     woken take's remove gcast are in flight around t = 10000-19000;
     ttl = 14000 expires mid-take. *)
  System.insert sys ~machine:0 [ v_sym "tok"; v_int 1 ] ~on_done:(fun () -> ());
  System.run sys;
  Alcotest.(check bool) "take reported expiry" true (!result = None);
  Alcotest.(check int) "compensating re-insert" 1
    (Sim.Stats.count (System.stats sys) "paso.expired_take_reinserts");
  (* The object is available again. *)
  Alcotest.(check bool) "object re-available" true
    (read_sync sys ~machine:2 (Template.headed "tok" [ Template.Any ]) <> None);
  check_no_violations sys

let test_markers_replicated_and_survive_leader_crash () =
  let sys = make ~n:8 ~lambda:2 () in
  (* Create the class so markers have somewhere to live. *)
  insert_sync sys ~machine:0 [ v_sym "mk"; v_int 0 ];
  let tmpl = Template.headed "mk" [ Template.Eq (v_int 99) ] in
  let got = ref None in
  System.read_blocking sys ~machine:7 tmpl ~on_done:(fun o -> got := Some o);
  System.run sys;
  Alcotest.(check bool) "parked" true (!got = None);
  (* The marker is replicated at every write-group member. *)
  let cls = (List.hd (System.known_classes sys)).Obj_class.name in
  let wg = System.write_group sys ~cls in
  Alcotest.(check bool) "marker traffic happened" true
    (Sim.Stats.count (System.stats sys) "paso.marker_placements" > 0);
  (* Crash the group leader: the marker state survives at the others,
     and the new leader sends the wake. *)
  System.crash sys ~machine:(List.hd wg);
  System.run sys;
  insert_sync sys ~machine:0 [ v_sym "mk"; v_int 99 ];
  System.run sys;
  Alcotest.(check bool) "woken by new leader after crash" true (!got <> None);
  check_no_violations sys

let test_marker_wakeups_cost_messages () =
  let sys = make () in
  let got = ref None in
  System.read_blocking sys ~machine:1 (Template.headed "w" [ Template.Any ])
    ~on_done:(fun o -> got := Some o);
  System.run sys;
  let msgs_parked = Sim.Stats.count (System.stats sys) "net.msgs" in
  insert_sync sys ~machine:0 [ v_sym "w"; v_int 1 ];
  Alcotest.(check bool) "woken" true (!got <> None);
  (* The wake-up and the retry are real messages on the bus. *)
  Alcotest.(check bool) "wake cost visible" true
    (Sim.Stats.count (System.stats sys) "net.msgs" > msgs_parked + 3)

(* --- live doubling policy ------------------------------------------------------- *)

let test_live_doubling_policy () =
  let k_of_ell ell = Float.max 2.0 (float_of_int ell) in
  let policy = Adaptive.Live_policy.doubling ~k_of_ell () in
  let sys = System.create { System.default_config with n = 6; lambda = 1; policy } in
  (* Small class: K small, a couple of remote reads trigger a join. *)
  insert_sync sys ~machine:0 [ v_sym "d"; v_int 0 ];
  let cls = (List.hd (System.known_classes sys)).Obj_class.name in
  let reader =
    List.find (fun m -> not (List.mem m (System.basic_support sys ~cls)))
      (List.init 6 Fun.id)
  in
  for _ = 1 to 3 do
    System.read sys ~machine:reader (Template.headed "d" [ Template.Any ])
      ~on_done:(fun _ -> ());
    System.run sys
  done;
  Alcotest.(check bool) "joined under small K" true
    (List.mem reader (System.write_group sys ~cls));
  (* Grow the class: K doubles with ell, so it takes a long update
     stream to push the reader out, but it still leaves eventually. *)
  for i = 1 to 40 do
    System.insert sys ~machine:0 [ v_sym "d"; v_int i ] ~on_done:(fun () -> ())
  done;
  System.run sys;
  Alcotest.(check bool) "left after update flood" false
    (List.mem reader (System.write_group sys ~cls));
  check_no_violations sys

(* --- WAN topology ------------------------------------------------------------------ *)

let wan_config =
  let clusters = Array.init 8 (fun m -> if m < 4 then 0 else 1) in
  { System.default_config with
    n = 8;
    lambda = 2;
    topology = System.Wan { clusters; remote = Net.Cost_model.v ~alpha:5000.0 ~beta:4.0 } }

let test_wan_basic_ops () =
  let sys = System.create wan_config in
  insert_sync sys ~machine:0 [ v_sym "w"; v_int 1 ];
  let r = read_sync sys ~machine:7 (Template.headed "w" [ Template.Any ]) in
  Alcotest.(check bool) "cross-cluster read works" true (r <> None);
  Alcotest.(check bool) "wan traffic accounted" true (System.wan_cost sys > 0.0);
  check_no_violations sys

let test_wan_cluster_aware_read_group () =
  let policy = Adaptive.Live_policy.counter ~k:4.0 () in
  let sys = System.create { wan_config with policy } in
  insert_sync sys ~machine:0 [ v_sym "w"; v_int 1 ];
  let cls = (List.hd (System.known_classes sys)).Obj_class.name in
  let basic = System.basic_support sys ~cls in
  let home = if List.hd basic < 4 then 0 else 1 in
  let far = List.filter (fun m -> (if m < 4 then 0 else 1) <> home) (List.init 8 Fun.id) in
  let reader = List.hd far in
  let tmpl = Template.headed "w" [ Template.Any ] in
  (* Hot-read until the far reader joins. *)
  for _ = 1 to 4 do
    System.read sys ~machine:reader tmpl ~on_done:(fun _ -> ());
    System.run sys
  done;
  Alcotest.(check bool) "far reader joined" true
    (List.mem reader (System.write_group sys ~cls));
  (* A second far-cluster machine now reads without touching the WAN. *)
  let reader2 = List.nth far 1 in
  let wan_before = System.wan_cost sys in
  let r = read_sync sys ~machine:reader2 tmpl in
  Alcotest.(check bool) "found" true (r <> None);
  Alcotest.(check (float 1e-9)) "no WAN traffic for the near read" wan_before
    (System.wan_cost sys);
  check_no_violations sys

let test_wan_link_aware_policy_joins_fast () =
  let policy = Adaptive.Live_policy.wan_counter ~k:12.0 ~wan_factor:20.0 () in
  let sys = System.create { wan_config with policy } in
  insert_sync sys ~machine:0 [ v_sym "w"; v_int 1 ];
  let cls = (List.hd (System.known_classes sys)).Obj_class.name in
  let basic = System.basic_support sys ~cls in
  let home = if List.hd basic < 4 then 0 else 1 in
  let far =
    List.find (fun m -> (if m < 4 then 0 else 1) <> home) (List.init 8 Fun.id)
  in
  (* One crossing read advances the counter by 3 responders x 20 >= K:
     the reader joins immediately. *)
  System.read sys ~machine:far (Template.headed "w" [ Template.Any ])
    ~on_done:(fun _ -> ());
  System.run sys;
  Alcotest.(check bool) "joined after one crossing read" true
    (List.mem far (System.write_group sys ~cls));
  check_no_violations sys

let test_wan_cluster_validation () =
  Alcotest.check_raises "bad cluster array"
    (Invalid_argument "System.create: clusters array must have length n") (fun () ->
      ignore
        (System.create
           { System.default_config with
             topology = System.Wan { clusters = [| 0 |]; remote = Net.Cost_model.default } }))

(* --- coalesced write groups ------------------------------------------------------ *)

let test_coalesced_groups_share_replication () =
  (* Every class maps to one shared group: the paper's many-to-one
     wg : C -> Names. *)
  let sys =
    System.create
      { System.default_config with n = 8; lambda = 2; group_map = Some (fun _ -> "shared") }
  in
  insert_sync sys ~machine:0 [ v_sym "x"; v_int 1 ];
  insert_sync sys ~machine:1 [ v_sym "y"; v_int 2 ];
  let classes = List.map (fun i -> i.Obj_class.name) (System.known_classes sys) in
  Alcotest.(check int) "two classes" 2 (List.length classes);
  let wgs = List.map (fun cls -> System.write_group sys ~cls) classes in
  Alcotest.(check bool) "same write group" true
    (match wgs with [ a; b ] -> a = b && a <> [] | _ -> false);
  Alcotest.(check bool) "same basic support" true
    (System.basic_support sys ~cls:(List.nth classes 0)
    = System.basic_support sys ~cls:(List.nth classes 1));
  check_no_violations sys

let test_coalesced_state_transfer_carries_all_classes () =
  let sys =
    System.create
      { System.default_config with n = 8; lambda = 2; group_map = Some (fun _ -> "shared") }
  in
  insert_sync sys ~machine:0 [ v_sym "x"; v_int 1 ];
  insert_sync sys ~machine:0 [ v_sym "y"; v_int 2 ];
  let cls = (List.hd (System.known_classes sys)).Obj_class.name in
  let victim = List.hd (System.basic_support sys ~cls) in
  System.crash sys ~machine:victim;
  System.run sys;
  insert_sync sys ~machine:(List.nth (System.basic_support sys ~cls) 1)
    [ v_sym "x"; v_int 3 ];
  System.recover sys ~machine:victim;
  System.run sys;
  (* The recovered member serves BOTH classes locally, including the
     insert made while it was down. *)
  let msgs = Sim.Stats.count (System.stats sys) "net.msgs" in
  let r1 = read_sync sys ~machine:victim (Template.headed "x" [ Template.Eq (v_int 3) ]) in
  let r2 = read_sync sys ~machine:victim (Template.headed "y" [ Template.Any ]) in
  Alcotest.(check bool) "class x restored" true (r1 <> None);
  Alcotest.(check bool) "class y restored" true (r2 <> None);
  Alcotest.(check int) "served locally" msgs (Sim.Stats.count (System.stats sys) "net.msgs");
  Alcotest.(check (list (pair string string))) "replicas agree" []
    (System.audit_replicas sys);
  check_no_violations sys

(* --- live support selection (repair) ------------------------------------------ *)

let make_repair ?(n = 8) ?(lambda = 2) strategy =
  System.create
    { System.default_config with n; lambda; repair = Some strategy }

let test_repair_restores_group_size () =
  let sys = make_repair Repair.Lrf in
  insert_sync sys ~machine:0 [ v_sym "c"; v_int 1 ];
  let cls = (List.hd (System.known_classes sys)).Obj_class.name in
  let before = System.basic_support sys ~cls in
  let victim = List.hd before in
  System.crash sys ~machine:victim;
  System.run sys;
  let wg = System.write_group sys ~cls in
  Alcotest.(check int) "wg back to lambda+1" 3 (List.length wg);
  Alcotest.(check bool) "victim out" false (List.mem victim wg);
  Alcotest.(check int) "one copy paid" 1
    (Sim.Stats.count (System.stats sys) "repair.copies");
  (* The replacement holds the data: it can serve the read locally. *)
  let replacement =
    List.find (fun m -> not (List.mem m before)) (System.basic_support sys ~cls)
  in
  let msgs = Sim.Stats.count (System.stats sys) "net.msgs" in
  let r = read_sync sys ~machine:replacement (Template.headed "c" [ Template.Any ]) in
  Alcotest.(check bool) "replacement serves locally" true (r <> None);
  Alcotest.(check int) "no messages" msgs (Sim.Stats.count (System.stats sys) "net.msgs");
  check_no_violations sys

let test_repair_victim_does_not_rejoin () =
  let sys = make_repair Repair.Lrf in
  insert_sync sys ~machine:0 [ v_sym "c"; v_int 1 ];
  let cls = (List.hd (System.known_classes sys)).Obj_class.name in
  let victim = List.hd (System.basic_support sys ~cls) in
  System.crash sys ~machine:victim;
  System.run sys;
  System.recover sys ~machine:victim;
  System.run sys;
  Alcotest.(check bool) "support moved on: victim not in basic" false
    (List.mem victim (System.basic_support sys ~cls));
  Alcotest.(check bool) "victim not a replica" false
    (List.mem victim (System.write_group sys ~cls));
  Alcotest.(check int) "wg still lambda+1" 3
    (List.length (System.write_group sys ~cls))

let test_repair_lrf_prefers_never_failed () =
  let sys = make_repair ~n:8 Repair.Lrf in
  insert_sync sys ~machine:0 [ v_sym "c"; v_int 1 ];
  let cls = (List.hd (System.known_classes sys)).Obj_class.name in
  let basic = System.basic_support sys ~cls in
  let outside = List.filter (fun m -> not (List.mem m basic)) (List.init 8 Fun.id) in
  (* Make one outsider flaky: it fails and recovers first. *)
  let flaky = List.hd outside in
  System.crash sys ~machine:flaky;
  System.run sys;
  System.recover sys ~machine:flaky;
  System.run sys;
  (* Now a basic member fails: LRF must pick a never-failed outsider. *)
  System.crash sys ~machine:(List.hd basic);
  System.run sys;
  let new_basic = System.basic_support sys ~cls in
  let replacement = List.find (fun m -> not (List.mem m basic)) new_basic in
  Alcotest.(check bool) "flaky machine avoided" true (replacement <> flaky)

let test_repair_exhausts_candidates_gracefully () =
  (* n = 4, lambda = 2: support is 3 machines, one outsider. The first
     basic crash consumes the outsider; the second finds no candidate
     but must not raise, and data must survive (k = 2 <= lambda). *)
  let sys = make_repair ~n:4 ~lambda:2 Repair.Lrf in
  insert_sync sys ~machine:0 [ v_sym "c"; v_int 1 ];
  let cls = (List.hd (System.known_classes sys)).Obj_class.name in
  let b0 = System.basic_support sys ~cls in
  System.crash sys ~machine:(List.nth b0 0);
  System.run sys;
  System.crash sys ~machine:(List.nth b0 1);
  System.run sys;
  Alcotest.(check int) "only one copy possible" 1
    (Sim.Stats.count (System.stats sys) "repair.copies");
  let up = List.find (System.is_up sys) (List.init 4 Fun.id) in
  Alcotest.(check bool) "data survives" true
    (read_sync sys ~machine:up (Template.headed "c" [ Template.Any ]) <> None);
  check_no_violations sys

let test_repair_storm_semantics () =
  let sys = make_repair ~n:10 ~lambda:2 Repair.Lrf in
  let rng = Sim.Rng.make 31 in
  for i = 1 to 10 do
    System.insert sys ~machine:(i mod 10) [ v_sym "c"; v_int i ] ~on_done:(fun () -> ())
  done;
  System.run sys;
  (* Repeated single-machine failure/recovery waves with ops in flight. *)
  for round = 1 to 12 do
    let up = List.filter (System.is_up sys) (List.init 10 Fun.id) in
    let victim = List.nth up (Sim.Rng.int rng (List.length up)) in
    System.crash sys ~machine:victim;
    let reader = List.find (System.is_up sys) (List.init 10 Fun.id) in
    System.read sys ~machine:reader (Template.headed "c" [ Template.Any ])
      ~on_done:(fun _ -> ());
    System.insert sys ~machine:reader [ v_sym "c"; v_int (100 + round) ]
      ~on_done:(fun () -> ());
    System.run sys;
    System.recover sys ~machine:victim;
    System.run sys
  done;
  let cls = (List.hd (System.known_classes sys)).Obj_class.name in
  Alcotest.(check int) "support intact after the storm" 3
    (List.length (System.write_group sys ~cls));
  Alcotest.(check bool) "repairs happened" true
    (Sim.Stats.count (System.stats sys) "repair.copies" > 0);
  check_no_violations sys

(* --- cross-machine workload with semantics check ----------------------------- *)

let test_mixed_workload_semantics () =
  let sys = make ~n:8 ~lambda:2 () in
  let rng = Sim.Rng.make 2024 in
  let heads = [| "a"; "b"; "c" |] in
  for _ = 1 to 40 do
    let machine = Sim.Rng.int rng 8 in
    let head = Sim.Rng.choice rng heads in
    match Sim.Rng.int rng 3 with
    | 0 ->
        System.insert sys ~machine [ v_sym head; v_int (Sim.Rng.int rng 100) ]
          ~on_done:(fun () -> ())
    | 1 ->
        System.read sys ~machine (Template.headed head [ Template.Any ])
          ~on_done:(fun _ -> ())
    | _ ->
        System.read_del sys ~machine (Template.headed head [ Template.Any ])
          ~on_done:(fun _ -> ());
    if Sim.Rng.int rng 4 = 0 then System.run_until sys (System.now sys +. 10000.0)
  done;
  System.run sys;
  Alcotest.(check int) "all ops completed" (History.op_count (System.history sys))
    (History.completed_ops (System.history sys));
  check_no_violations sys

let test_workload_with_crashes_semantics () =
  let sys = make ~n:8 ~lambda:2 () in
  let rng = Sim.Rng.make 7 in
  let crashed = ref [] in
  for step = 1 to 60 do
    let up = List.filter (System.is_up sys) (List.init 8 Fun.id) in
    (match up with
    | [] -> ()
    | _ ->
        let machine = List.nth up (Sim.Rng.int rng (List.length up)) in
        (match Sim.Rng.int rng 3 with
        | 0 ->
            System.insert sys ~machine [ v_sym "k"; v_int step ] ~on_done:(fun () -> ())
        | 1 ->
            System.read sys ~machine (Template.headed "k" [ Template.Any ])
              ~on_done:(fun _ -> ())
        | _ ->
            System.read_del sys ~machine (Template.headed "k" [ Template.Any ])
              ~on_done:(fun _ -> ())));
    (* Keep at most λ=2 machines down at any time. *)
    if Sim.Rng.int rng 10 = 0 && List.length !crashed < 2 then begin
      let up = List.filter (System.is_up sys) (List.init 8 Fun.id) in
      let victim = List.nth up (Sim.Rng.int rng (List.length up)) in
      System.crash sys ~machine:victim;
      crashed := victim :: !crashed
    end;
    if Sim.Rng.int rng 10 = 1 then begin
      match !crashed with
      | v :: rest ->
          System.recover sys ~machine:v;
          crashed := rest
      | [] -> ()
    end;
    System.run_until sys (System.now sys +. 3000.0)
  done;
  System.run sys;
  check_no_violations sys

let test_soak_large_ensemble () =
  (* 32 machines, 1500 mixed operations, periodic faults: ends
     consistent, semantically clean, with every issued op completed
     (none lost) except those orphaned by crashes. *)
  let n = 32 in
  let sys = make ~n ~lambda:2 () in
  let rng = Sim.Rng.make 77 in
  let heads = [| "a"; "b"; "c"; "d"; "e"; "f" |] in
  let down = ref [] in
  for i = 1 to 1500 do
    let up = List.filter (System.is_up sys) (List.init n Fun.id) in
    (match up with
    | [] -> ()
    | _ -> (
        let m = List.nth up (Sim.Rng.int rng (List.length up)) in
        let head = Sim.Rng.choice rng heads in
        match Sim.Rng.int rng 10 with
        | 0 | 1 | 2 | 3 ->
            System.insert sys ~machine:m [ v_sym head; v_int i ] ~on_done:(fun () -> ())
        | 4 | 5 | 6 ->
            System.read sys ~machine:m (Template.headed head [ Template.Any ])
              ~on_done:(fun _ -> ())
        | _ ->
            System.read_del sys ~machine:m (Template.headed head [ Template.Any ])
              ~on_done:(fun _ -> ())));
    if i mod 100 = 0 then begin
      (match !down with
      | m :: rest ->
          System.recover sys ~machine:m;
          down := rest
      | [] -> ());
      if List.length !down < 2 then begin
        let up = List.filter (System.is_up sys) (List.init n Fun.id) in
        let v = List.nth up (Sim.Rng.int rng (List.length up)) in
        System.crash sys ~machine:v;
        down := v :: !down
      end
    end;
    if i mod 50 = 0 then System.run_until sys (System.now sys +. 50000.0)
  done;
  List.iter (fun m -> System.recover sys ~machine:m) !down;
  System.run sys;
  Alcotest.(check (list (pair string string))) "replicas consistent" []
    (System.audit_replicas sys);
  check_no_violations sys;
  Alcotest.(check bool) "made real progress" true
    (History.completed_ops (System.history sys) > 1200)

let test_deterministic_replay () =
  let run () =
    let sys = make ~n:8 ~lambda:2 () in
    for i = 1 to 20 do
      System.insert sys ~machine:(i mod 8) [ v_sym "d"; v_int i ] ~on_done:(fun () -> ())
    done;
    System.run sys;
    ( Sim.Stats.count (System.stats sys) "net.msgs",
      Sim.Stats.total (System.stats sys) "net.msg_cost",
      System.now sys )
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "identical runs" true (a = b)

let () =
  Alcotest.run "system"
    [
      ( "primitives",
        [
          Alcotest.test_case "insert then read" `Quick test_insert_read;
          Alcotest.test_case "read missing fails" `Quick test_read_missing_fails;
          Alcotest.test_case "read is non-destructive" `Quick test_read_is_nondestructive;
          Alcotest.test_case "read&del consumes" `Quick test_read_del_consumes;
          Alcotest.test_case "read&del takes oldest" `Quick test_read_del_oldest_first;
          Alcotest.test_case "predicate criteria" `Quick test_selective_matching;
          Alcotest.test_case "range query on tree store" `Quick test_range_query_tree_store;
        ] );
      ( "groups",
        [
          Alcotest.test_case "wg = basic support" `Quick test_write_group_is_basic_support;
          Alcotest.test_case "local reads send nothing" `Quick test_local_read_no_messages;
          Alcotest.test_case "read group size" `Quick test_read_group_size;
        ] );
      ( "blocking",
        [
          Alcotest.test_case "blocking read wakes on insert" `Quick test_blocking_read_wakes;
          Alcotest.test_case "blocking take is exclusive" `Quick test_blocking_take_exclusive;
          Alcotest.test_case "polling variant" `Quick test_blocking_poll;
        ] );
      ( "faults",
        [
          Alcotest.test_case "crash outside wg harmless" `Quick test_crash_non_member_harmless;
          Alcotest.test_case "data survives lambda crashes" `Quick
            test_crash_lambda_members_data_survives;
          Alcotest.test_case "recovery rejoins + restores" `Quick
            test_recovery_rejoins_and_restores;
          Alcotest.test_case "insert during failures, catch-up" `Quick
            test_insert_during_failures;
          Alcotest.test_case "dead machine rejects ops" `Quick test_crashed_machine_rejects_ops;
          Alcotest.test_case "FT violation detected" `Quick
            test_fault_tolerance_violation_detected;
        ] );
      ( "figure1",
        [
          Alcotest.test_case "insert cost closed form" `Quick
            test_insert_cost_matches_closed_form;
          Alcotest.test_case "remote read cost closed form" `Quick
            test_remote_read_cost_matches_closed_form;
        ] );
      ( "extensions",
        [
          Alcotest.test_case "eager reads lower latency" `Quick
            test_eager_reads_lower_latency;
          Alcotest.test_case "ttl marker expires" `Quick test_ttl_marker_expires;
          Alcotest.test_case "ttl marker satisfied" `Quick test_ttl_marker_satisfied_in_time;
          Alcotest.test_case "expired take re-inserts" `Quick
            test_ttl_expired_take_reinserts;
          Alcotest.test_case "live doubling policy" `Quick test_live_doubling_policy;
          Alcotest.test_case "markers survive leader crash" `Quick
            test_markers_replicated_and_survive_leader_crash;
          Alcotest.test_case "marker wakes cost messages" `Quick
            test_marker_wakeups_cost_messages;
        ] );
      ( "wan",
        [
          Alcotest.test_case "basic ops across clusters" `Quick test_wan_basic_ops;
          Alcotest.test_case "cluster-aware read group" `Quick
            test_wan_cluster_aware_read_group;
          Alcotest.test_case "link-aware policy joins fast" `Quick
            test_wan_link_aware_policy_joins_fast;
          Alcotest.test_case "cluster validation" `Quick test_wan_cluster_validation;
        ] );
      ( "coalesced groups",
        [
          Alcotest.test_case "classes share replication" `Quick
            test_coalesced_groups_share_replication;
          Alcotest.test_case "state transfer carries all classes" `Quick
            test_coalesced_state_transfer_carries_all_classes;
        ] );
      ( "repair",
        [
          Alcotest.test_case "restores group size" `Quick test_repair_restores_group_size;
          Alcotest.test_case "victim does not rejoin" `Quick
            test_repair_victim_does_not_rejoin;
          Alcotest.test_case "LRF prefers never-failed" `Quick
            test_repair_lrf_prefers_never_failed;
          Alcotest.test_case "graceful when out of candidates" `Quick
            test_repair_exhausts_candidates_gracefully;
          Alcotest.test_case "storm keeps semantics clean" `Quick
            test_repair_storm_semantics;
        ] );
      ( "workloads",
        [
          Alcotest.test_case "mixed workload semantics" `Quick test_mixed_workload_semantics;
          Alcotest.test_case "crashy workload semantics" `Quick
            test_workload_with_crashes_semantics;
          Alcotest.test_case "deterministic replay" `Quick test_deterministic_replay;
          Alcotest.test_case "soak: 32 machines, 1500 ops" `Quick test_soak_large_ensemble;
        ] );
    ]
