(* Unit suite for lib/durable: CRC framing, the WAL/checkpoint codec
   (QCheck round-trip + corruption detection), the simulated disk, and
   the Wal append/checkpoint/recover discipline under armed
   failpoints. System-level crash-recovery scenarios live in
   test_recovery.ml. *)

open Paso
module Failpoint = Check.Failpoint

(* --- Crc -------------------------------------------------------------------- *)

let test_crc_known () =
  (* the standard CRC-32 (IEEE) check value *)
  Alcotest.(check int) "check value" 0xCBF43926 (Durable.Crc.string "123456789");
  Alcotest.(check int) "empty" 0 (Durable.Crc.string "")

let test_crc_compose () =
  let s = "the quick brown fox jumps over the lazy dog" in
  let k = 17 in
  let partial = Durable.Crc.update 0 s ~pos:0 ~len:k in
  let whole = Durable.Crc.update partial s ~pos:k ~len:(String.length s - k) in
  Alcotest.(check int) "composes over concatenation" (Durable.Crc.string s) whole

let test_crc_single_byte () =
  let s = "paso durable wal frame" in
  let reference = Durable.Crc.string s in
  String.iteri
    (fun i c ->
      let b = Bytes.of_string s in
      Bytes.set b i (Char.chr (Char.code c lxor 0x40));
      Alcotest.(check bool)
        (Printf.sprintf "byte %d flip detected" i)
        true
        (Durable.Crc.string (Bytes.to_string b) <> reference))
    s

(* --- frames ----------------------------------------------------------------- *)

let test_frames_round_trip () =
  let payloads = [ "alpha"; ""; "a longer third payload \x00 with a nul" ] in
  let stream = String.concat "" (List.map Durable.Codec.frame payloads) in
  match Durable.Codec.read_frames stream with
  | got, `Clean -> Alcotest.(check (list string)) "payloads" payloads got
  | _, `Torn why -> Alcotest.failf "clean stream read as torn: %s" why

let test_frames_torn_tail () =
  let payloads = [ "one"; "two"; "three" ] in
  let stream = String.concat "" (List.map Durable.Codec.frame payloads) in
  let cut = String.sub stream 0 (String.length stream - 2) in
  match Durable.Codec.read_frames cut with
  | got, `Torn _ -> Alcotest.(check (list string)) "surviving prefix" [ "one"; "two" ] got
  | _, `Clean -> Alcotest.fail "truncated stream read as clean"

let test_frames_any_byte_corruption () =
  let stream =
    String.concat "" (List.map Durable.Codec.frame [ "first"; "second" ])
  in
  String.iteri
    (fun i c ->
      let b = Bytes.of_string stream in
      Bytes.set b i (Char.chr (Char.code c lxor 0x01));
      match Durable.Codec.read_frames (Bytes.to_string b) with
      | _, `Torn _ -> ()
      | got, `Clean ->
          if got = [ "first"; "second" ] then
            Alcotest.failf "corruption at byte %d went undetected" i)
    stream

(* --- record codec ----------------------------------------------------------- *)

let uid ~machine ~serial = Uid.make ~machine ~serial

let obj ~machine ~serial fields = Pobj.make ~uid:(uid ~machine ~serial) fields

let record_round_trip rcd =
  match Durable.Codec.read_frames (Durable.Codec.encode_record rcd) with
  | [ payload ], `Clean -> Durable.Codec.decode_record_payload payload
  | _ -> Alcotest.fail "record did not frame as one clean frame"

let test_record_round_trip () =
  let o = obj ~machine:3 ~serial:7 [ Value.Sym "a"; Value.Int 42; Value.Bool true ] in
  (match record_round_trip (Durable.Codec.R_store { cls = "a/3"; obj = o }) with
  | Durable.Codec.R_store { cls; obj = o' } ->
      Alcotest.(check string) "store class" "a/3" cls;
      Alcotest.(check bool) "store uid" true (Uid.equal (Pobj.uid o') (Pobj.uid o));
      Alcotest.(check bool) "store fields" true (Pobj.fields o' = Pobj.fields o)
  | _ -> Alcotest.fail "store decoded as another record");
  (match record_round_trip (Durable.Codec.R_remove { cls = "a/3"; uid = uid ~machine:1 ~serial:9 }) with
  | Durable.Codec.R_remove { cls; uid = u } ->
      Alcotest.(check string) "remove class" "a/3" cls;
      Alcotest.(check bool) "remove uid" true (Uid.equal u (uid ~machine:1 ~serial:9))
  | _ -> Alcotest.fail "remove decoded as another record");
  let tmpl =
    Template.make
      [
        Template.Eq (Value.Sym "a");
        Template.Range (Value.Int 0, Value.Int 10);
        Template.Type_is "str";
        Template.Any;
      ]
  in
  (match record_round_trip (Durable.Codec.R_mark { cls = "a/3"; mid = 12; machine = 5; tmpl }) with
  | Durable.Codec.R_mark { cls; mid; machine; tmpl = t } ->
      Alcotest.(check string) "mark class" "a/3" cls;
      Alcotest.(check int) "mark id" 12 mid;
      Alcotest.(check int) "mark machine" 5 machine;
      Alcotest.(check bool) "first-order template round-trips" true
        (Template.specs t = Template.specs tmpl)
  | _ -> Alcotest.fail "mark decoded as another record");
  match record_round_trip (Durable.Codec.R_cancel { cls = "a/3"; mid = 12 }) with
  | Durable.Codec.R_cancel { cls; mid } ->
      Alcotest.(check string) "cancel class" "a/3" cls;
      Alcotest.(check int) "cancel id" 12 mid
  | _ -> Alcotest.fail "cancel decoded as another record"

(* --- snapshot codec: QCheck round trip + corruption ------------------------- *)

(* Closure-free values and templates only: [Pred]/[where] deliberately
   do not survive the codec (documented degradation). *)
let gen_value =
  QCheck2.Gen.oneof
    [
      QCheck2.Gen.map (fun i -> Value.Int i) QCheck2.Gen.int;
      QCheck2.Gen.map (fun f -> Value.Float f) (QCheck2.Gen.float_range (-1e9) 1e9);
      QCheck2.Gen.map (fun s -> Value.Str s) (QCheck2.Gen.small_string ?gen:None);
      QCheck2.Gen.map (fun b -> Value.Bool b) QCheck2.Gen.bool;
      QCheck2.Gen.map (fun s -> Value.Sym s) (QCheck2.Gen.small_string ?gen:None);
    ]

let gen_spec =
  QCheck2.Gen.oneof
    [
      QCheck2.Gen.pure Template.Any;
      QCheck2.Gen.map (fun v -> Template.Eq v) gen_value;
      QCheck2.Gen.map
        (fun t -> Template.Type_is t)
        (QCheck2.Gen.oneofl [ "int"; "float"; "str"; "bool"; "sym" ]);
      QCheck2.Gen.map
        (fun (a, b) ->
          Template.Range (Value.Int (min a b), Value.Int (max a b)))
        (QCheck2.Gen.pair QCheck2.Gen.small_int QCheck2.Gen.small_int);
    ]

let gen_template =
  QCheck2.Gen.map Template.make (QCheck2.Gen.list_size (QCheck2.Gen.int_range 1 4) gen_spec)

let gen_obj =
  QCheck2.Gen.map3
    (fun machine serial fields -> obj ~machine ~serial fields)
    (QCheck2.Gen.int_range 0 15)
    (QCheck2.Gen.int_range 0 10_000)
    (QCheck2.Gen.list_size (QCheck2.Gen.int_range 1 4) gen_value)

let gen_marker =
  QCheck2.Gen.map3
    (fun mk_id mk_machine mk_tmpl -> { Server.mk_id; mk_machine; mk_tmpl })
    (QCheck2.Gen.int_range 0 1000)
    (QCheck2.Gen.int_range 0 15)
    gen_template

let gen_uid =
  QCheck2.Gen.map2
    (fun machine serial -> uid ~machine ~serial)
    (QCheck2.Gen.int_range 0 15)
    (QCheck2.Gen.int_range 0 10_000)

let gen_snapshot =
  let gen_class i =
    QCheck2.Gen.map3
      (fun objs marks tombs -> (Printf.sprintf "class-%d" i, (objs, marks, tombs)))
      (QCheck2.Gen.list_size (QCheck2.Gen.int_range 0 8) gen_obj)
      (QCheck2.Gen.list_size (QCheck2.Gen.int_range 0 3) gen_marker)
      (QCheck2.Gen.list_size (QCheck2.Gen.int_range 0 5) gen_uid)
  in
  QCheck2.Gen.bind (QCheck2.Gen.int_range 0 4) (fun n ->
      QCheck2.Gen.flatten_l (List.init n gen_class))

let obj_eq a b = Uid.equal (Pobj.uid a) (Pobj.uid b) && Pobj.fields a = Pobj.fields b

let marker_eq (a : Server.marker) (b : Server.marker) =
  a.mk_id = b.mk_id && a.mk_machine = b.mk_machine
  && Template.specs a.mk_tmpl = Template.specs b.mk_tmpl

let snapshot_eq (a : Server.snapshot) (b : Server.snapshot) =
  List.length a = List.length b
  && List.for_all2
       (fun (ca, (oa, ma, ta)) (cb, (ob, mb, tb)) ->
         ca = cb
         && List.length oa = List.length ob
         && List.for_all2 obj_eq oa ob
         && List.length ma = List.length mb
         && List.for_all2 marker_eq ma mb
         && List.length ta = List.length tb
         && List.for_all2 Uid.equal ta tb)
       a b

let test_snapshot_round_trip_prop =
  QCheck2.Test.make ~name:"snapshot codec: decode (encode s) = s" ~count:300
    gen_snapshot (fun snap ->
      snapshot_eq snap (Durable.Codec.decode_snapshot (Durable.Codec.encode_snapshot snap)))

let test_snapshot_corruption_prop =
  QCheck2.Test.make ~name:"snapshot codec: any single-byte corruption raises Corrupt"
    ~count:300
    QCheck2.Gen.(triple gen_snapshot (int_range 0 max_int) (int_range 1 255))
    (fun (snap, pos, flip) ->
      let encoded = Durable.Codec.encode_snapshot snap in
      let b = Bytes.of_string encoded in
      let pos = pos mod Bytes.length b in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor flip));
      match Durable.Codec.decode_snapshot (Bytes.to_string b) with
      | _ -> false
      | exception Durable.Codec.Corrupt _ -> true)

(* --- Disk ------------------------------------------------------------------- *)

let test_disk_discipline () =
  let d = Durable.Disk.create ~machine:2 in
  Alcotest.(check int) "machine" 2 (Durable.Disk.machine d);
  Alcotest.(check int) "fresh wal empty" 0 (Durable.Disk.wal_bytes d);
  Alcotest.(check bool) "fresh checkpoint empty" true (Durable.Disk.checkpoint d = None);
  Durable.Disk.wal_append d "hello";
  Durable.Disk.wal_append d "world";
  Alcotest.(check string) "appends concatenate" "helloworld" (Durable.Disk.wal_contents d);
  Durable.Disk.wal_truncate d 3;
  Alcotest.(check string) "tail truncation" "hellowo" (Durable.Disk.wal_contents d);
  Durable.Disk.wal_truncate d 100;
  Alcotest.(check int) "over-truncation clamps" 0 (Durable.Disk.wal_bytes d);
  Durable.Disk.set_checkpoint d "ckpt-1";
  Durable.Disk.set_checkpoint d "ckpt-2";
  Alcotest.(check bool) "atomic replacement" true
    (Durable.Disk.checkpoint d = Some "ckpt-2");
  Durable.Disk.wipe d;
  Alcotest.(check bool) "wipe erases all" true
    (Durable.Disk.wal_bytes d = 0 && Durable.Disk.checkpoint d = None)

(* --- Wal -------------------------------------------------------------------- *)

let mk_wal () =
  let fps = Failpoint.create () in
  let disk = Durable.Disk.create ~machine:0 in
  (Durable.Wal.create ~fps ~machine:0 ~disk, fps, disk)

let store ?(cls = "a") ~serial v =
  Durable.Codec.R_store { cls; obj = obj ~machine:0 ~serial [ Value.Sym "a"; Value.Int v ] }

let objects_of (r : Durable.Wal.recovery) =
  List.concat_map
    (fun (_, (objs, _, _)) -> List.map (fun o -> Pobj.field o 1) objs)
    r.Durable.Wal.r_snapshot

let recover_exn wal =
  match Durable.Wal.recover wal with
  | Some r -> r
  | None -> Alcotest.fail "expected recoverable state on disk"

let test_wal_replay () =
  let wal, _, _ = mk_wal () in
  ignore (Durable.Wal.append wal (store ~serial:0 10));
  ignore (Durable.Wal.append wal (store ~serial:1 11));
  ignore (Durable.Wal.append wal (store ~serial:2 12));
  ignore
    (Durable.Wal.append wal
       (Durable.Codec.R_remove { cls = "a"; uid = uid ~machine:0 ~serial:1 }));
  let r = recover_exn wal in
  Alcotest.(check int) "records replayed" 4 r.Durable.Wal.r_replayed;
  Alcotest.(check bool) "clean" false r.Durable.Wal.r_torn;
  Alcotest.(check int) "live objects" 2 r.Durable.Wal.r_objects;
  Alcotest.(check (list (testable Value.pp Value.equal)))
    "removal replayed by uid"
    [ Value.Int 10; Value.Int 12 ]
    (objects_of r)

let test_wal_empty_disk () =
  let wal, _, _ = mk_wal () in
  Alcotest.(check bool) "nothing to recover" true (Durable.Wal.recover wal = None)

let test_wal_checkpoint_truncates () =
  let wal, _, disk = mk_wal () in
  ignore (Durable.Wal.append wal (store ~serial:0 1));
  ignore (Durable.Wal.append wal (store ~serial:1 2));
  let r = recover_exn wal in
  let bytes = Durable.Wal.checkpoint wal r.Durable.Wal.r_snapshot in
  Alcotest.(check bool) "checkpoint written" true (bytes > 0);
  Alcotest.(check int) "log truncated" 0 (Durable.Disk.wal_bytes disk);
  Alcotest.(check int) "append counter reset" 0 (Durable.Wal.records_since_checkpoint wal);
  ignore (Durable.Wal.append wal (store ~serial:2 3));
  let r = recover_exn wal in
  Alcotest.(check int) "replays only the post-checkpoint log" 1 r.Durable.Wal.r_replayed;
  Alcotest.(check int) "checkpoint bytes used" bytes r.Durable.Wal.r_checkpoint_bytes;
  Alcotest.(check (list (testable Value.pp Value.equal)))
    "checkpoint + replay"
    [ Value.Int 1; Value.Int 2; Value.Int 3 ]
    (objects_of r)

let test_wal_torn_append () =
  let wal, fps, _ = mk_wal () in
  ignore (Durable.Wal.append wal (store ~serial:0 1));
  ignore (Durable.Wal.append wal (store ~serial:1 2));
  Failpoint.arm fps ~site:"durable.wal.append" ~times:1 (fun _ -> Failpoint.Truncate 3);
  ignore (Durable.Wal.append wal (store ~serial:2 3));
  (* a record after the torn one is unreachable: replay must stop at
     the first damaged frame, not resync past it *)
  ignore (Durable.Wal.append wal (store ~serial:3 4));
  let r = recover_exn wal in
  Alcotest.(check bool) "torn tail detected" true r.Durable.Wal.r_torn;
  Alcotest.(check int) "only the clean prefix replays" 2 r.Durable.Wal.r_replayed;
  Alcotest.(check (list (testable Value.pp Value.equal)))
    "prefix state" [ Value.Int 1; Value.Int 2 ] (objects_of r)

let test_wal_crash_tail_lost () =
  let wal, fps, _ = mk_wal () in
  ignore (Durable.Wal.append wal (store ~serial:0 1));
  let tail = Durable.Wal.append wal (store ~serial:1 2) in
  Failpoint.arm fps ~site:"durable.crash.tail" ~times:1 (fun _ -> Failpoint.Truncate tail);
  Durable.Wal.on_crash wal;
  let r = recover_exn wal in
  Alcotest.(check int) "the synced prefix survives" 1 r.Durable.Wal.r_replayed;
  Alcotest.(check bool) "a whole-frame cut is clean" false r.Durable.Wal.r_torn;
  Failpoint.arm fps ~site:"durable.crash.tail" ~times:1 (fun _ -> Failpoint.Drop);
  Durable.Wal.on_crash wal;
  Alcotest.(check bool) "whole log lost, nothing to recover" true
    (Durable.Wal.recover wal = None)

let test_wal_checkpoint_write_failures () =
  let wal, fps, disk = mk_wal () in
  ignore (Durable.Wal.append wal (store ~serial:0 1));
  let r0 = recover_exn wal in
  let good = Durable.Wal.checkpoint wal r0.Durable.Wal.r_snapshot in
  Alcotest.(check bool) "baseline checkpoint lands" true (good > 0);
  ignore (Durable.Wal.append wal (store ~serial:1 2));
  (* dropped write: the stale-checkpoint case *)
  Failpoint.arm fps ~site:"durable.checkpoint.write" ~times:1 (fun _ -> Failpoint.Drop);
  let r1 = recover_exn wal in
  Alcotest.(check int) "dropped write reports failure" 0
    (Durable.Wal.checkpoint wal r1.Durable.Wal.r_snapshot);
  Alcotest.(check bool) "log kept after dropped write" true (Durable.Disk.wal_bytes disk > 0);
  (* torn write: caught by read-back verification *)
  Failpoint.arm fps ~site:"durable.checkpoint.write" ~times:1 (fun _ -> Failpoint.Truncate 4);
  Alcotest.(check int) "torn write reports failure" 0
    (Durable.Wal.checkpoint wal r1.Durable.Wal.r_snapshot);
  Alcotest.(check bool) "log kept after torn write" true (Durable.Disk.wal_bytes disk > 0);
  let r = recover_exn wal in
  Alcotest.(check bool) "old image + full log still recover everything" true
    ([ Value.Int 1; Value.Int 2 ] = objects_of r)

let test_wal_bad_checkpoint_fallback () =
  let wal, _, disk = mk_wal () in
  ignore (Durable.Wal.append wal (store ~serial:0 1));
  ignore (Durable.Wal.append wal (store ~serial:1 2));
  Durable.Disk.set_checkpoint disk "garbage that is not a frame";
  let r = recover_exn wal in
  Alcotest.(check bool) "bad checkpoint flagged" true r.Durable.Wal.r_bad_checkpoint;
  Alcotest.(check int) "no checkpoint bytes credited" 0 r.Durable.Wal.r_checkpoint_bytes;
  Alcotest.(check (list (testable Value.pp Value.equal)))
    "log-only replay" [ Value.Int 1; Value.Int 2 ] (objects_of r)

let test_wal_marker_replay () =
  let wal, _, _ = mk_wal () in
  let tmpl = Template.headed "a" [ Template.Any ] in
  ignore
    (Durable.Wal.append wal
       (Durable.Codec.R_mark { cls = "a"; mid = 1; machine = 3; tmpl }));
  ignore
    (Durable.Wal.append wal
       (Durable.Codec.R_mark { cls = "a"; mid = 2; machine = 4; tmpl = Template.headed "b" [] }));
  ignore (Durable.Wal.append wal (Durable.Codec.R_cancel { cls = "a"; mid = 2 }));
  (* marker 1 must be consumed by the matching store, like Server.handle *)
  ignore (Durable.Wal.append wal (store ~serial:0 7));
  let r = recover_exn wal in
  match r.Durable.Wal.r_snapshot with
  | [ ("a", (objs, marks, _)) ] ->
      Alcotest.(check int) "the object landed" 1 (List.length objs);
      Alcotest.(check (list int)) "matched + cancelled markers are gone" []
        (List.map (fun m -> m.Server.mk_id) marks)
  | _ -> Alcotest.fail "expected exactly class a"

let () =
  Alcotest.run "durable"
    [
      ( "crc",
        [
          Alcotest.test_case "known vectors" `Quick test_crc_known;
          Alcotest.test_case "update composes" `Quick test_crc_compose;
          Alcotest.test_case "single-byte flips detected" `Quick test_crc_single_byte;
        ] );
      ( "frames",
        [
          Alcotest.test_case "round trip" `Quick test_frames_round_trip;
          Alcotest.test_case "torn tail" `Quick test_frames_torn_tail;
          Alcotest.test_case "any byte corruption detected" `Quick
            test_frames_any_byte_corruption;
        ] );
      ( "records",
        [ Alcotest.test_case "all four variants round trip" `Quick test_record_round_trip ] );
      ( "snapshot codec",
        [
          QCheck_alcotest.to_alcotest test_snapshot_round_trip_prop;
          QCheck_alcotest.to_alcotest test_snapshot_corruption_prop;
        ] );
      ( "disk",
        [ Alcotest.test_case "storage discipline" `Quick test_disk_discipline ] );
      ( "wal",
        [
          Alcotest.test_case "append + replay" `Quick test_wal_replay;
          Alcotest.test_case "empty disk" `Quick test_wal_empty_disk;
          Alcotest.test_case "checkpoint truncates the log" `Quick
            test_wal_checkpoint_truncates;
          Alcotest.test_case "torn append = torn tail" `Quick test_wal_torn_append;
          Alcotest.test_case "crash loses the unsynced tail" `Quick
            test_wal_crash_tail_lost;
          Alcotest.test_case "failed checkpoint writes never lose the log" `Quick
            test_wal_checkpoint_write_failures;
          Alcotest.test_case "bad checkpoint falls back to log replay" `Quick
            test_wal_bad_checkpoint_fallback;
          Alcotest.test_case "marker replay mirrors the server" `Quick
            test_wal_marker_replay;
        ] );
    ]
