(* Tests for Value, Uid and Pobj. *)

open Paso

let uid m s = Uid.make ~machine:m ~serial:s

(* --- Value ----------------------------------------------------------------- *)

let test_type_names () =
  let cases =
    [
      (Value.Int 1, "int");
      (Value.Float 1.0, "float");
      (Value.Str "x", "str");
      (Value.Bool true, "bool");
      (Value.Sym "s", "sym");
    ]
  in
  List.iter
    (fun (v, ty) -> Alcotest.(check string) "type name" ty (Value.type_name v))
    cases

let test_compare_same_type () =
  Alcotest.(check bool) "int order" true (Value.compare (Value.Int 1) (Value.Int 2) < 0);
  Alcotest.(check bool) "str order" true
    (Value.compare (Value.Str "a") (Value.Str "b") < 0);
  Alcotest.(check bool) "eq" true (Value.equal (Value.Sym "x") (Value.Sym "x"));
  Alcotest.(check bool) "neq across types" false (Value.equal (Value.Int 1) (Value.Float 1.0))

let test_compare_total_order_prop =
  let gen =
    QCheck2.Gen.oneof
      [
        QCheck2.Gen.map (fun i -> Value.Int i) QCheck2.Gen.int;
        QCheck2.Gen.map (fun f -> Value.Float f) (QCheck2.Gen.float_range (-1e6) 1e6);
        QCheck2.Gen.map (fun s -> Value.Str s) (QCheck2.Gen.small_string ?gen:None);
        QCheck2.Gen.map (fun b -> Value.Bool b) QCheck2.Gen.bool;
        QCheck2.Gen.map (fun s -> Value.Sym s) (QCheck2.Gen.small_string ?gen:None);
      ]
  in
  QCheck2.Test.make ~name:"compare is antisymmetric and transitive-ish" ~count:500
    (QCheck2.Gen.triple gen gen gen) (fun (a, b, c) ->
      let sgn x = compare x 0 in
      sgn (Value.compare a b) = -sgn (Value.compare b a)
      && (not (Value.compare a b <= 0 && Value.compare b c <= 0)
         || Value.compare a c <= 0))

let test_value_size_positive () =
  List.iter
    (fun v -> Alcotest.(check bool) "positive size" true (Value.size v > 0))
    [ Value.Int 0; Value.Float 0.0; Value.Str ""; Value.Bool false; Value.Sym "" ]

let test_value_pp () =
  Alcotest.(check string) "int" "42" (Value.to_string (Value.Int 42));
  Alcotest.(check string) "sym unquoted" "task" (Value.to_string (Value.Sym "task"));
  Alcotest.(check string) "str quoted" "\"task\"" (Value.to_string (Value.Str "task"))

(* --- Uid -------------------------------------------------------------------- *)

let test_uid_order () =
  Alcotest.(check bool) "serial order" true (Uid.compare (uid 1 1) (uid 1 2) < 0);
  Alcotest.(check bool) "machine order" true (Uid.compare (uid 1 9) (uid 2 0) < 0);
  Alcotest.(check bool) "equal" true (Uid.equal (uid 3 4) (uid 3 4))

let test_uid_containers () =
  let s = Uid.Set.of_list [ uid 0 1; uid 0 0; uid 0 1 ] in
  Alcotest.(check int) "set dedups" 2 (Uid.Set.cardinal s);
  let tbl = Uid.Tbl.create 4 in
  Uid.Tbl.add tbl (uid 1 1) "x";
  Alcotest.(check (option string)) "tbl lookup" (Some "x") (Uid.Tbl.find_opt tbl (uid 1 1))

(* --- Pobj ------------------------------------------------------------------- *)

let test_pobj_basics () =
  let o = Pobj.make ~uid:(uid 0 0) [ Value.Sym "t"; Value.Int 5 ] in
  Alcotest.(check int) "arity" 2 (Pobj.arity o);
  Alcotest.(check bool) "field" true (Pobj.field o 1 = Value.Int 5);
  Alcotest.(check string) "signature" "sym,int" (Pobj.signature o);
  Alcotest.(check bool) "size includes uid" true (Pobj.size o > Uid.size)

let test_pobj_empty_rejected () =
  Alcotest.check_raises "empty tuple" (Invalid_argument "Pobj: empty tuple") (fun () ->
      ignore (Pobj.make ~uid:(uid 0 0) []))

let test_pobj_field_bounds () =
  let o = Pobj.make ~uid:(uid 0 0) [ Value.Int 1 ] in
  Alcotest.check_raises "out of range" (Invalid_argument "Pobj.field: out of range")
    (fun () -> ignore (Pobj.field o 1))

let test_pobj_identity_vs_contents () =
  let a = Pobj.make ~uid:(uid 0 0) [ Value.Int 1 ] in
  let b = Pobj.make ~uid:(uid 0 1) [ Value.Int 1 ] in
  Alcotest.(check bool) "different identity" false (Pobj.equal a b);
  Alcotest.(check bool) "same contents" true (Pobj.equal_contents a b)

let test_pobj_immutable_from_array () =
  let arr = [| Value.Int 1 |] in
  let o = Pobj.of_array ~uid:(uid 0 0) arr in
  arr.(0) <- Value.Int 99;
  Alcotest.(check bool) "defensive copy" true (Pobj.field o 0 = Value.Int 1)

let () =
  Alcotest.run "values"
    [
      ( "value",
        [
          Alcotest.test_case "type names" `Quick test_type_names;
          Alcotest.test_case "comparisons" `Quick test_compare_same_type;
          QCheck_alcotest.to_alcotest test_compare_total_order_prop;
          Alcotest.test_case "sizes positive" `Quick test_value_size_positive;
          Alcotest.test_case "printing" `Quick test_value_pp;
        ] );
      ( "uid",
        [
          Alcotest.test_case "ordering" `Quick test_uid_order;
          Alcotest.test_case "containers" `Quick test_uid_containers;
        ] );
      ( "pobj",
        [
          Alcotest.test_case "basics" `Quick test_pobj_basics;
          Alcotest.test_case "empty rejected" `Quick test_pobj_empty_rejected;
          Alcotest.test_case "field bounds" `Quick test_pobj_field_bounds;
          Alcotest.test_case "identity vs contents" `Quick test_pobj_identity_vs_contents;
          Alcotest.test_case "defensive copy" `Quick test_pobj_immutable_from_array;
        ] );
    ]
