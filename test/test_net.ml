(* Tests for the network model: cost model, serialising bus, transport. *)

let check_float = Alcotest.(check (float 1e-9))

let cm alpha beta = Net.Cost_model.v ~alpha ~beta

(* --- Cost_model ---------------------------------------------------------- *)

let test_msg_cost () =
  let m = cm 500.0 1.0 in
  check_float "alpha + beta*size" 628.0 (Net.Cost_model.msg_cost m ~size:128);
  check_float "empty message costs alpha" 500.0 (Net.Cost_model.msg_cost m ~size:0)

let test_gcast_cost_formula () =
  (* msg-cost(gcast) = α(2g+1) + β(m·g + r), §3.3. *)
  let m = cm 500.0 2.0 in
  let g = 5 and msg = 100 and resp = 40 in
  let expect = (500.0 *. 11.0) +. (2.0 *. ((100.0 *. 5.0) +. 40.0)) in
  check_float "closed form" expect
    (Net.Cost_model.gcast_cost m ~group_size:g ~msg_size:msg ~resp_size:resp)

let test_gcast_cost_zero_group () =
  let m = cm 500.0 1.0 in
  check_float "g=0 leaves only the response" (500.0 +. 40.0)
    (Net.Cost_model.gcast_cost m ~group_size:0 ~msg_size:100 ~resp_size:40)

let test_cost_model_validation () =
  Alcotest.check_raises "negative alpha"
    (Invalid_argument "Cost_model.v: negative constant") (fun () ->
      ignore (cm (-1.0) 0.0));
  let m = cm 1.0 1.0 in
  Alcotest.check_raises "negative size"
    (Invalid_argument "Cost_model.msg_cost: negative size") (fun () ->
      ignore (Net.Cost_model.msg_cost m ~size:(-1)))

(* --- Bus ------------------------------------------------------------------ *)

let make_bus ?(alpha = 10.0) ?(beta = 1.0) () =
  let eng = Sim.Engine.create () in
  let stats = Sim.Stats.create () in
  let bus = Net.Bus.create eng (cm alpha beta) stats in
  (eng, stats, bus)

let test_bus_serialises () =
  let eng, _, bus = make_bus () in
  (* Two messages of cost 10+5=15 each, submitted together: the second
     is delivered only after the first's slot — the paper's
     one-message-at-a-time bus. *)
  let t1 = ref 0.0 and t2 = ref 0.0 in
  Net.Bus.transmit bus ~size:5 (fun () -> t1 := Sim.Engine.now eng);
  Net.Bus.transmit bus ~size:5 (fun () -> t2 := Sim.Engine.now eng);
  Sim.Engine.run eng;
  check_float "first at its cost" 15.0 !t1;
  check_float "second serialised" 30.0 !t2

let test_bus_idle_gap () =
  let eng, _, bus = make_bus () in
  let t2 = ref 0.0 in
  Net.Bus.transmit bus ~size:0 (fun () -> ());
  ignore
    (Sim.Engine.schedule eng ~delay:100.0 (fun () ->
         Net.Bus.transmit bus ~size:0 (fun () -> t2 := Sim.Engine.now eng)));
  Sim.Engine.run eng;
  check_float "bus idle in between" 110.0 !t2

let test_bus_accounting () =
  let eng, stats, bus = make_bus () in
  Net.Bus.transmit bus ~size:5 (fun () -> ());
  Net.Bus.transmit bus ~size:10 (fun () -> ());
  Sim.Engine.run eng;
  Alcotest.(check int) "message count" 2 (Net.Bus.message_count bus);
  check_float "total cost" 35.0 (Net.Bus.total_cost bus);
  Alcotest.(check int) "stats msgs" 2 (Sim.Stats.count stats "net.msgs");
  check_float "stats cost" 35.0 (Sim.Stats.total stats "net.msg_cost")

(* --- Transport ------------------------------------------------------------ *)

let make_transport ?(n = 4) () =
  let eng, stats, bus = (make_bus ()) in
  ignore stats;
  let tr = Net.Transport.create eng bus ~n in
  (eng, tr)

let test_transport_delivery () =
  let eng, tr = make_transport () in
  let got = ref [] in
  Net.Transport.set_handler tr ~node:1 (fun ~src msg -> got := (src, msg) :: !got);
  Net.Transport.send tr ~src:0 ~dst:1 ~size:8 "hello";
  Sim.Engine.run eng;
  Alcotest.(check (list (pair int string))) "delivered with src" [ (0, "hello") ] !got

let test_transport_fifo_per_pair () =
  let eng, tr = make_transport () in
  let got = ref [] in
  Net.Transport.set_handler tr ~node:2 (fun ~src:_ msg -> got := msg :: !got);
  List.iter (fun m -> Net.Transport.send tr ~src:0 ~dst:2 ~size:1 m) [ "a"; "b"; "c" ];
  Sim.Engine.run eng;
  Alcotest.(check (list string)) "FIFO" [ "a"; "b"; "c" ] (List.rev !got)

let test_transport_down_drops () =
  let eng, tr = make_transport () in
  let got = ref 0 in
  Net.Transport.set_handler tr ~node:1 (fun ~src:_ _ -> incr got);
  Net.Transport.set_down tr 1;
  Net.Transport.send tr ~src:0 ~dst:1 ~size:1 "x";
  Sim.Engine.run eng;
  Alcotest.(check int) "dropped" 0 !got

let test_transport_crash_drops_inflight () =
  let eng, tr = make_transport () in
  let got = ref 0 in
  Net.Transport.set_handler tr ~node:1 (fun ~src:_ _ -> incr got);
  (* Message enters the bus, then the destination crashes before the
     delivery instant: the message must be lost (crash erases state). *)
  Net.Transport.send tr ~src:0 ~dst:1 ~size:100 "x";
  ignore (Sim.Engine.schedule eng ~delay:1.0 (fun () -> Net.Transport.set_down tr 1));
  Sim.Engine.run eng;
  Alcotest.(check int) "in-flight dropped on crash" 0 !got

let test_transport_recovery_epoch () =
  let eng, tr = make_transport () in
  let got = ref 0 in
  Net.Transport.set_handler tr ~node:1 (fun ~src:_ _ -> incr got);
  Net.Transport.send tr ~src:0 ~dst:1 ~size:100 "x";
  (* Crash and recover before the delivery instant: the old message was
     addressed to the previous incarnation and must still be dropped. *)
  ignore
    (Sim.Engine.schedule eng ~delay:1.0 (fun () ->
         Net.Transport.set_down tr 1;
         Net.Transport.set_up tr 1));
  Sim.Engine.run eng;
  Alcotest.(check int) "stale incarnation message dropped" 0 !got;
  (* But the recovered node receives fresh messages. *)
  Net.Transport.send tr ~src:0 ~dst:1 ~size:1 "y";
  Sim.Engine.run eng;
  Alcotest.(check int) "fresh message delivered" 1 !got

let test_transport_up_nodes () =
  let _, tr = make_transport ~n:5 () in
  Net.Transport.set_down tr 2;
  Net.Transport.set_down tr 4;
  Alcotest.(check (list int)) "up nodes" [ 0; 1; 3 ] (Net.Transport.up_nodes tr);
  Alcotest.(check bool) "is_up" false (Net.Transport.is_up tr 2)

(* --- Fabric ----------------------------------------------------------------- *)

let make_wan ?(clusters = [| 0; 0; 1; 1 |]) () =
  let eng = Sim.Engine.create () in
  let stats = Sim.Stats.create () in
  let fabric =
    Net.Fabric.wan eng ~clusters ~local:(cm 10.0 1.0) ~remote:(cm 1000.0 2.0) stats
  in
  (eng, stats, fabric)

let test_fabric_shared_matches_bus () =
  let eng = Sim.Engine.create () in
  let stats = Sim.Stats.create () in
  let f = Net.Fabric.shared_bus eng (cm 10.0 1.0) stats in
  let t1 = ref 0.0 and t2 = ref 0.0 in
  Net.Fabric.transmit f ~src:0 ~dst:1 ~size:5 (fun () -> t1 := Sim.Engine.now eng);
  Net.Fabric.transmit f ~src:2 ~dst:3 ~size:5 (fun () -> t2 := Sim.Engine.now eng);
  Sim.Engine.run eng;
  check_float "first" 15.0 !t1;
  check_float "shared bus serialises across sources" 30.0 !t2;
  Alcotest.(check bool) "not wan" false (Net.Fabric.is_wan f);
  Alcotest.(check bool) "same cluster trivially" true (Net.Fabric.same_cluster f 0 3)

let test_fabric_wan_parallel_sources () =
  let eng, _, f = make_wan () in
  let t1 = ref 0.0 and t2 = ref 0.0 in
  Net.Fabric.transmit f ~src:0 ~dst:1 ~size:5 (fun () -> t1 := Sim.Engine.now eng);
  Net.Fabric.transmit f ~src:2 ~dst:3 ~size:5 (fun () -> t2 := Sim.Engine.now eng);
  Sim.Engine.run eng;
  check_float "source 0" 15.0 !t1;
  check_float "source 2 in parallel" 15.0 !t2

let test_fabric_wan_serialises_per_source () =
  let eng, _, f = make_wan () in
  let t2 = ref 0.0 in
  Net.Fabric.transmit f ~src:0 ~dst:1 ~size:5 (fun () -> ());
  Net.Fabric.transmit f ~src:0 ~dst:3 ~size:0 (fun () -> t2 := Sim.Engine.now eng);
  Sim.Engine.run eng;
  (* local 15 first, then remote 1000 on the same uplink. *)
  check_float "uplink serialises" 1015.0 !t2

let test_fabric_wan_pricing_and_stats () =
  let eng, stats, f = make_wan () in
  Net.Fabric.transmit f ~src:0 ~dst:1 ~size:10 (fun () -> ());
  Net.Fabric.transmit f ~src:0 ~dst:2 ~size:10 (fun () -> ());
  Sim.Engine.run eng;
  check_float "total = local 20 + remote 1020" 1040.0 (Net.Fabric.total_cost f);
  Alcotest.(check int) "msgs" 2 (Sim.Stats.count stats "net.msgs");
  Alcotest.(check int) "wan msgs" 1 (Sim.Stats.count stats "net.wan_msgs");
  check_float "wan cost" 1020.0 (Sim.Stats.total stats "net.wan_cost");
  Alcotest.(check bool) "clusters" true
    (Net.Fabric.same_cluster f 0 1 && not (Net.Fabric.same_cluster f 0 2))

let test_fabric_validation () =
  let eng = Sim.Engine.create () in
  let stats = Sim.Stats.create () in
  Alcotest.check_raises "empty clusters" (Invalid_argument "Fabric.wan: empty cluster map")
    (fun () ->
      ignore (Net.Fabric.wan eng ~clusters:[||] ~local:(cm 1.0 1.0) ~remote:(cm 1.0 1.0) stats));
  let _, _, f = make_wan () in
  Alcotest.check_raises "bad machine"
    (Invalid_argument "Fabric.transmit: machine out of range") (fun () ->
      Net.Fabric.transmit f ~src:0 ~dst:9 ~size:1 (fun () -> ()))

let () =
  Alcotest.run "net"
    [
      ( "cost_model",
        [
          Alcotest.test_case "msg cost" `Quick test_msg_cost;
          Alcotest.test_case "gcast closed form" `Quick test_gcast_cost_formula;
          Alcotest.test_case "gcast empty group" `Quick test_gcast_cost_zero_group;
          Alcotest.test_case "validation" `Quick test_cost_model_validation;
        ] );
      ( "bus",
        [
          Alcotest.test_case "serialises transmissions" `Quick test_bus_serialises;
          Alcotest.test_case "idle gaps" `Quick test_bus_idle_gap;
          Alcotest.test_case "cost accounting" `Quick test_bus_accounting;
        ] );
      ( "fabric",
        [
          Alcotest.test_case "shared matches bus" `Quick test_fabric_shared_matches_bus;
          Alcotest.test_case "wan parallel sources" `Quick test_fabric_wan_parallel_sources;
          Alcotest.test_case "wan per-source serialisation" `Quick
            test_fabric_wan_serialises_per_source;
          Alcotest.test_case "wan pricing and stats" `Quick test_fabric_wan_pricing_and_stats;
          Alcotest.test_case "validation" `Quick test_fabric_validation;
        ] );
      ( "transport",
        [
          Alcotest.test_case "delivery with src" `Quick test_transport_delivery;
          Alcotest.test_case "FIFO per pair" `Quick test_transport_fifo_per_pair;
          Alcotest.test_case "down node drops" `Quick test_transport_down_drops;
          Alcotest.test_case "crash drops in-flight" `Quick test_transport_crash_drops_inflight;
          Alcotest.test_case "epoch guards recovery" `Quick test_transport_recovery_epoch;
          Alcotest.test_case "up_nodes" `Quick test_transport_up_nodes;
        ] );
    ]
