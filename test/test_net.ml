(* Tests for the network model: cost model, serialising bus, transport. *)

let check_float = Alcotest.(check (float 1e-9))

let cm alpha beta = Net.Cost_model.v ~alpha ~beta

(* --- Cost_model ---------------------------------------------------------- *)

let test_msg_cost () =
  let m = cm 500.0 1.0 in
  check_float "alpha + beta*size" 628.0 (Net.Cost_model.msg_cost m ~size:128);
  check_float "empty message costs alpha" 500.0 (Net.Cost_model.msg_cost m ~size:0)

let test_gcast_cost_formula () =
  (* msg-cost(gcast) = α(2g+1) + β(m·g + r), §3.3. *)
  let m = cm 500.0 2.0 in
  let g = 5 and msg = 100 and resp = 40 in
  let expect = (500.0 *. 11.0) +. (2.0 *. ((100.0 *. 5.0) +. 40.0)) in
  check_float "closed form" expect
    (Net.Cost_model.gcast_cost m ~group_size:g ~msg_size:msg ~resp_size:resp)

let test_gcast_cost_zero_group () =
  let m = cm 500.0 1.0 in
  check_float "g=0 leaves only the response" (500.0 +. 40.0)
    (Net.Cost_model.gcast_cost m ~group_size:0 ~msg_size:100 ~resp_size:40)

let test_cost_model_validation () =
  Alcotest.check_raises "negative alpha"
    (Invalid_argument "Cost_model.v: negative constant") (fun () ->
      ignore (cm (-1.0) 0.0));
  let m = cm 1.0 1.0 in
  Alcotest.check_raises "negative size"
    (Invalid_argument "Cost_model.msg_cost: negative size") (fun () ->
      ignore (Net.Cost_model.msg_cost m ~size:(-1)))

(* --- Bus ------------------------------------------------------------------ *)

let make_bus ?(alpha = 10.0) ?(beta = 1.0) () =
  let eng = Sim.Engine.create () in
  let stats = Sim.Stats.create () in
  let bus = Net.Bus.create eng (cm alpha beta) stats in
  (eng, stats, bus)

let test_bus_serialises () =
  let eng, _, bus = make_bus () in
  (* Two messages of cost 10+5=15 each, submitted together: the second
     is delivered only after the first's slot — the paper's
     one-message-at-a-time bus. *)
  let t1 = ref 0.0 and t2 = ref 0.0 in
  Net.Bus.transmit bus ~size:5 (fun () -> t1 := Sim.Engine.now eng);
  Net.Bus.transmit bus ~size:5 (fun () -> t2 := Sim.Engine.now eng);
  Sim.Engine.run eng;
  check_float "first at its cost" 15.0 !t1;
  check_float "second serialised" 30.0 !t2

let test_bus_idle_gap () =
  let eng, _, bus = make_bus () in
  let t2 = ref 0.0 in
  Net.Bus.transmit bus ~size:0 (fun () -> ());
  ignore
    (Sim.Engine.schedule eng ~delay:100.0 (fun () ->
         Net.Bus.transmit bus ~size:0 (fun () -> t2 := Sim.Engine.now eng)));
  Sim.Engine.run eng;
  check_float "bus idle in between" 110.0 !t2

let test_bus_accounting () =
  let eng, stats, bus = make_bus () in
  Net.Bus.transmit bus ~size:5 (fun () -> ());
  Net.Bus.transmit bus ~size:10 (fun () -> ());
  Sim.Engine.run eng;
  Alcotest.(check int) "message count" 2 (Net.Bus.message_count bus);
  check_float "total cost" 35.0 (Net.Bus.total_cost bus);
  Alcotest.(check int) "stats msgs" 2 (Sim.Stats.count stats "net.msgs");
  check_float "stats cost" 35.0 (Sim.Stats.total stats "net.msg_cost")

let test_frame_cost () =
  let m = cm 500.0 2.0 in
  check_float "alpha once + beta * sum" (500.0 +. (2.0 *. 60.0))
    (Net.Cost_model.frame_cost m ~sizes:[ 10; 20; 30 ]);
  check_float "singleton frame = msg_cost"
    (Net.Cost_model.msg_cost m ~size:10)
    (Net.Cost_model.frame_cost m ~sizes:[ 10 ]);
  Alcotest.check_raises "negative payload"
    (Invalid_argument "Cost_model.frame_cost: negative size") (fun () ->
      ignore (Net.Cost_model.frame_cost m ~sizes:[ 1; -1 ]))

let test_bus_frame_accounting () =
  let eng, stats, bus = make_bus () in
  (* Three ops of 5 bytes each in one frame: one physical message
     costing alpha + beta*15, vs 3*(alpha + beta*5) unbatched. *)
  Net.Bus.transmit_frame bus ~ops:3 ~bytes:15 (fun () -> ());
  Sim.Engine.run eng;
  Alcotest.(check int) "one physical message" 1 (Net.Bus.message_count bus);
  check_float "alpha charged once" 25.0 (Net.Bus.total_cost bus);
  Alcotest.(check int) "frames counted" 1 (Sim.Stats.count stats "net.frames");
  Alcotest.(check int) "frame ops counted" 3 (Sim.Stats.count stats "net.frame_ops")

let test_batch_cfg () =
  let c = Net.Batch.cfg ~max_ops:2 ~max_bytes:100 ~hold:50.0 () in
  Alcotest.(check bool) "under caps" false (Net.Batch.cut_after c ~ops:1 ~bytes:10);
  Alcotest.(check bool) "op cap cuts" true (Net.Batch.cut_after c ~ops:2 ~bytes:10);
  Alcotest.(check bool) "byte cap cuts" true (Net.Batch.cut_after c ~ops:1 ~bytes:100);
  Alcotest.check_raises "bad max_ops" (Invalid_argument "Batch.cfg: max_ops < 1")
    (fun () -> ignore (Net.Batch.cfg ~max_ops:0 ()))

(* --- Transport ------------------------------------------------------------ *)

let make_transport ?batch ?(n = 4) () =
  let eng, stats, bus = (make_bus ()) in
  let tr = Net.Transport.create ?batch eng bus ~n in
  (eng, stats, bus, tr)

let make_transport' ?(n = 4) () =
  let eng, _, _, tr = make_transport ~n () in
  (eng, tr)

let test_transport_delivery () =
  let eng, tr = make_transport' () in
  let got = ref [] in
  Net.Transport.set_handler tr ~node:1 (fun ~src msg -> got := (src, msg) :: !got);
  Net.Transport.send tr ~src:0 ~dst:1 ~size:8 "hello";
  Sim.Engine.run eng;
  Alcotest.(check (list (pair int string))) "delivered with src" [ (0, "hello") ] !got

let test_transport_fifo_per_pair () =
  let eng, tr = make_transport' () in
  let got = ref [] in
  Net.Transport.set_handler tr ~node:2 (fun ~src:_ msg -> got := msg :: !got);
  List.iter (fun m -> Net.Transport.send tr ~src:0 ~dst:2 ~size:1 m) [ "a"; "b"; "c" ];
  Sim.Engine.run eng;
  Alcotest.(check (list string)) "FIFO" [ "a"; "b"; "c" ] (List.rev !got)

let test_transport_down_drops () =
  let eng, tr = make_transport' () in
  let got = ref 0 in
  Net.Transport.set_handler tr ~node:1 (fun ~src:_ _ -> incr got);
  Net.Transport.set_down tr 1;
  Net.Transport.send tr ~src:0 ~dst:1 ~size:1 "x";
  Sim.Engine.run eng;
  Alcotest.(check int) "dropped" 0 !got

let test_transport_crash_drops_inflight () =
  let eng, tr = make_transport' () in
  let got = ref 0 in
  Net.Transport.set_handler tr ~node:1 (fun ~src:_ _ -> incr got);
  (* Message enters the bus, then the destination crashes before the
     delivery instant: the message must be lost (crash erases state). *)
  Net.Transport.send tr ~src:0 ~dst:1 ~size:100 "x";
  ignore (Sim.Engine.schedule eng ~delay:1.0 (fun () -> Net.Transport.set_down tr 1));
  Sim.Engine.run eng;
  Alcotest.(check int) "in-flight dropped on crash" 0 !got

let test_transport_recovery_epoch () =
  let eng, tr = make_transport' () in
  let got = ref 0 in
  Net.Transport.set_handler tr ~node:1 (fun ~src:_ _ -> incr got);
  Net.Transport.send tr ~src:0 ~dst:1 ~size:100 "x";
  (* Crash and recover before the delivery instant: the old message was
     addressed to the previous incarnation and must still be dropped. *)
  ignore
    (Sim.Engine.schedule eng ~delay:1.0 (fun () ->
         Net.Transport.set_down tr 1;
         Net.Transport.set_up tr 1));
  Sim.Engine.run eng;
  Alcotest.(check int) "stale incarnation message dropped" 0 !got;
  (* But the recovered node receives fresh messages. *)
  Net.Transport.send tr ~src:0 ~dst:1 ~size:1 "y";
  Sim.Engine.run eng;
  Alcotest.(check int) "fresh message delivered" 1 !got

let test_transport_up_nodes () =
  let _, tr = make_transport' ~n:5 () in
  Net.Transport.set_down tr 2;
  Net.Transport.set_down tr 4;
  Alcotest.(check (list int)) "up nodes" [ 0; 1; 3 ] (Net.Transport.up_nodes tr);
  Alcotest.(check bool) "is_up" false (Net.Transport.is_up tr 2)

(* --- Transport batching ----------------------------------------------------- *)

let test_transport_batch_coalesces () =
  let batch = Net.Batch.cfg ~max_ops:8 ~max_bytes:1000 ~hold:50.0 () in
  let eng, stats, bus, tr = make_transport ~batch () in
  let got = ref [] in
  Net.Transport.set_handler tr ~node:1 (fun ~src:_ msg ->
      got := (msg, Sim.Engine.now eng) :: !got);
  List.iter
    (fun m -> Net.Transport.send tr ~src:0 ~dst:1 ~size:5 m)
    [ "a"; "b"; "c" ];
  Alcotest.(check int) "held in the lane" 3 (Net.Transport.pending_batched tr);
  Sim.Engine.run eng;
  (* Flush at hold=50, then one frame of cost 10 + 15 = 25. *)
  Alcotest.(check (list (pair string (float 1e-9))))
    "one frame, FIFO, delivered at hold + frame cost"
    [ ("a", 75.0); ("b", 75.0); ("c", 75.0) ]
    (List.rev !got);
  Alcotest.(check int) "one physical message" 1 (Net.Bus.message_count bus);
  check_float "alpha charged once" 25.0 (Net.Bus.total_cost bus);
  Alcotest.(check int) "frame ops" 3 (Sim.Stats.count stats "net.frame_ops")

let test_transport_batch_cut_on_cap () =
  let batch = Net.Batch.cfg ~max_ops:2 ~max_bytes:1000 ~hold:50.0 () in
  let eng, _, bus, tr = make_transport ~batch () in
  let at = ref [] in
  Net.Transport.set_handler tr ~node:1 (fun ~src:_ _ ->
      at := Sim.Engine.now eng :: !at);
  Net.Transport.send tr ~src:0 ~dst:1 ~size:5 "a";
  Net.Transport.send tr ~src:0 ~dst:1 ~size:5 "b";
  Alcotest.(check int) "cut immediately at the op cap" 0
    (Net.Transport.pending_batched tr);
  Sim.Engine.run eng;
  (* The frame goes out at enqueue time, not after the hold window. *)
  Alcotest.(check (list (float 1e-9))) "no hold-window wait" [ 20.0; 20.0 ] !at;
  Alcotest.(check int) "one frame" 1 (Net.Bus.message_count bus)

let test_transport_batch_explicit_flush () =
  let batch = Net.Batch.cfg ~max_ops:8 ~max_bytes:1000 ~hold:500.0 () in
  let eng, _, _, tr = make_transport ~batch () in
  let at = ref 0.0 in
  Net.Transport.set_handler tr ~node:1 (fun ~src:_ _ -> at := Sim.Engine.now eng);
  Net.Transport.send tr ~src:0 ~dst:1 ~size:5 "a";
  Net.Transport.flush tr;
  Alcotest.(check int) "drained" 0 (Net.Transport.pending_batched tr);
  Sim.Engine.run eng;
  check_float "sent at flush, not after hold" 15.0 !at

let test_transport_batch_epoch_guard () =
  let batch = Net.Batch.cfg ~max_ops:8 ~max_bytes:1000 ~hold:50.0 () in
  let eng, _, _, tr = make_transport ~batch () in
  let got = ref 0 in
  Net.Transport.set_handler tr ~node:1 (fun ~src:_ _ -> incr got);
  Net.Transport.send tr ~src:0 ~dst:1 ~size:5 "a";
  (* Crash + recover while the message is still held in the lane: it
     was addressed to the previous incarnation and must be dropped at
     delivery, exactly as on the unbatched path. *)
  ignore
    (Sim.Engine.schedule eng ~delay:1.0 (fun () ->
         Net.Transport.set_down tr 1;
         Net.Transport.set_up tr 1));
  Sim.Engine.run eng;
  Alcotest.(check int) "stale incarnation dropped" 0 !got;
  Net.Transport.send tr ~src:0 ~dst:1 ~size:5 "b";
  Sim.Engine.run eng;
  Alcotest.(check int) "fresh incarnation delivered" 1 !got

(* --- Fabric ----------------------------------------------------------------- *)

let make_wan ?(clusters = [| 0; 0; 1; 1 |]) () =
  let eng = Sim.Engine.create () in
  let stats = Sim.Stats.create () in
  let fabric =
    Net.Fabric.wan eng ~clusters ~local:(cm 10.0 1.0) ~remote:(cm 1000.0 2.0) stats
  in
  (eng, stats, fabric)

let test_fabric_shared_matches_bus () =
  let eng = Sim.Engine.create () in
  let stats = Sim.Stats.create () in
  let f = Net.Fabric.shared_bus eng (cm 10.0 1.0) stats in
  let t1 = ref 0.0 and t2 = ref 0.0 in
  Net.Fabric.transmit f ~src:0 ~dst:1 ~size:5 (fun () -> t1 := Sim.Engine.now eng);
  Net.Fabric.transmit f ~src:2 ~dst:3 ~size:5 (fun () -> t2 := Sim.Engine.now eng);
  Sim.Engine.run eng;
  check_float "first" 15.0 !t1;
  check_float "shared bus serialises across sources" 30.0 !t2;
  Alcotest.(check bool) "not wan" false (Net.Fabric.is_wan f);
  Alcotest.(check bool) "same cluster trivially" true (Net.Fabric.same_cluster f 0 3)

let test_fabric_wan_parallel_sources () =
  let eng, _, f = make_wan () in
  let t1 = ref 0.0 and t2 = ref 0.0 in
  Net.Fabric.transmit f ~src:0 ~dst:1 ~size:5 (fun () -> t1 := Sim.Engine.now eng);
  Net.Fabric.transmit f ~src:2 ~dst:3 ~size:5 (fun () -> t2 := Sim.Engine.now eng);
  Sim.Engine.run eng;
  check_float "source 0" 15.0 !t1;
  check_float "source 2 in parallel" 15.0 !t2

let test_fabric_wan_serialises_per_source () =
  let eng, _, f = make_wan () in
  let t2 = ref 0.0 in
  Net.Fabric.transmit f ~src:0 ~dst:1 ~size:5 (fun () -> ());
  Net.Fabric.transmit f ~src:0 ~dst:3 ~size:0 (fun () -> t2 := Sim.Engine.now eng);
  Sim.Engine.run eng;
  (* local 15 first, then remote 1000 on the same uplink. *)
  check_float "uplink serialises" 1015.0 !t2

let test_fabric_wan_pricing_and_stats () =
  let eng, stats, f = make_wan () in
  Net.Fabric.transmit f ~src:0 ~dst:1 ~size:10 (fun () -> ());
  Net.Fabric.transmit f ~src:0 ~dst:2 ~size:10 (fun () -> ());
  Sim.Engine.run eng;
  check_float "total = local 20 + remote 1020" 1040.0 (Net.Fabric.total_cost f);
  Alcotest.(check int) "msgs" 2 (Sim.Stats.count stats "net.msgs");
  Alcotest.(check int) "wan msgs" 1 (Sim.Stats.count stats "net.wan_msgs");
  check_float "wan cost" 1020.0 (Sim.Stats.total stats "net.wan_cost");
  Alcotest.(check bool) "clusters" true
    (Net.Fabric.same_cluster f 0 1 && not (Net.Fabric.same_cluster f 0 2))

let test_fabric_wan_frame_pricing () =
  let eng, stats, f = make_wan () in
  (* Remote frame of two 10-byte ops: alpha(remote)=1000 once + 2*20. *)
  Net.Fabric.transmit_frame f ~src:0 ~dst:2 ~ops:2 ~bytes:20 (fun () -> ());
  Sim.Engine.run eng;
  check_float "remote alpha charged once" 1040.0 (Net.Fabric.total_cost f);
  Alcotest.(check int) "one wan msg" 1 (Sim.Stats.count stats "net.wan_msgs");
  Alcotest.(check int) "frame ops" 2 (Sim.Stats.count stats "net.frame_ops")

let test_fabric_validation () =
  let eng = Sim.Engine.create () in
  let stats = Sim.Stats.create () in
  Alcotest.check_raises "empty clusters" (Invalid_argument "Fabric.wan: empty cluster map")
    (fun () ->
      ignore (Net.Fabric.wan eng ~clusters:[||] ~local:(cm 1.0 1.0) ~remote:(cm 1.0 1.0) stats));
  let _, _, f = make_wan () in
  Alcotest.check_raises "bad machine"
    (Invalid_argument "Fabric.transmit: machine out of range") (fun () ->
      Net.Fabric.transmit f ~src:0 ~dst:9 ~size:1 (fun () -> ()))

let () =
  Alcotest.run "net"
    [
      ( "cost_model",
        [
          Alcotest.test_case "msg cost" `Quick test_msg_cost;
          Alcotest.test_case "gcast closed form" `Quick test_gcast_cost_formula;
          Alcotest.test_case "gcast empty group" `Quick test_gcast_cost_zero_group;
          Alcotest.test_case "frame cost" `Quick test_frame_cost;
          Alcotest.test_case "validation" `Quick test_cost_model_validation;
        ] );
      ( "bus",
        [
          Alcotest.test_case "serialises transmissions" `Quick test_bus_serialises;
          Alcotest.test_case "idle gaps" `Quick test_bus_idle_gap;
          Alcotest.test_case "cost accounting" `Quick test_bus_accounting;
          Alcotest.test_case "frame accounting" `Quick test_bus_frame_accounting;
        ] );
      ( "batch",
        [
          Alcotest.test_case "cfg caps and validation" `Quick test_batch_cfg;
          Alcotest.test_case "transport coalesces in the hold window" `Quick
            test_transport_batch_coalesces;
          Alcotest.test_case "op cap cuts early" `Quick
            test_transport_batch_cut_on_cap;
          Alcotest.test_case "explicit flush" `Quick
            test_transport_batch_explicit_flush;
          Alcotest.test_case "epoch guard preserved" `Quick
            test_transport_batch_epoch_guard;
        ] );
      ( "fabric",
        [
          Alcotest.test_case "shared matches bus" `Quick test_fabric_shared_matches_bus;
          Alcotest.test_case "wan parallel sources" `Quick test_fabric_wan_parallel_sources;
          Alcotest.test_case "wan per-source serialisation" `Quick
            test_fabric_wan_serialises_per_source;
          Alcotest.test_case "wan pricing and stats" `Quick test_fabric_wan_pricing_and_stats;
          Alcotest.test_case "wan frame pricing" `Quick test_fabric_wan_frame_pricing;
          Alcotest.test_case "validation" `Quick test_fabric_validation;
        ] );
      ( "transport",
        [
          Alcotest.test_case "delivery with src" `Quick test_transport_delivery;
          Alcotest.test_case "FIFO per pair" `Quick test_transport_fifo_per_pair;
          Alcotest.test_case "down node drops" `Quick test_transport_down_drops;
          Alcotest.test_case "crash drops in-flight" `Quick test_transport_crash_drops_inflight;
          Alcotest.test_case "epoch guards recovery" `Quick test_transport_recovery_epoch;
          Alcotest.test_case "up_nodes" `Quick test_transport_up_nodes;
        ] );
    ]
