(* Tests for the §5 adaptive algorithms: counter mechanics, exact OPT,
   competitive bounds (Theorems 2 and 3), paging and support selection
   (Theorem 4), and the live policy plug-in. *)

open Adaptive

let check_float = Alcotest.(check (float 1e-9))

let params ?(n = 4) ?(lambda = 1) ?(k = 4.0) ?(q = 1.0) () =
  Model.make_params ~q ~n ~lambda ~basic:(List.init (lambda + 1) Fun.id) ~k ()

(* --- Counter ----------------------------------------------------------------- *)

let test_counter_join_threshold () =
  let c = Counter.create ~k:4.0 () in
  (* λ = 1: each remote read adds 2. *)
  let o1 = Counter.on_read c ~responders:2 in
  Alcotest.(check bool) "not yet" false o1.Counter.joined;
  check_float "remote cost" 2.0 o1.Counter.cost;
  let o2 = Counter.on_read c ~responders:2 in
  Alcotest.(check bool) "joins at K" true o2.Counter.joined;
  check_float "read + join cost" 6.0 o2.Counter.cost;
  Alcotest.(check bool) "member now" true (Counter.is_member c);
  check_float "counter at K" 4.0 (Counter.counter c)

let test_counter_local_read_caps () =
  let c = Counter.create ~k:2.0 () in
  ignore (Counter.on_read c ~responders:2);
  (* joined; counter = 2 *)
  let o = Counter.on_read c ~responders:99 in
  check_float "local read costs q" 1.0 o.Counter.cost;
  check_float "capped at K" 2.0 (Counter.counter c)

let test_counter_leave_at_zero () =
  let c = Counter.create ~k:2.0 () in
  ignore (Counter.on_read c ~responders:2);
  Alcotest.(check bool) "in" true (Counter.is_member c);
  let o1 = Counter.on_update c in
  Alcotest.(check bool) "not yet out" false o1.Counter.left;
  let o2 = Counter.on_update c in
  Alcotest.(check bool) "leaves at 0" true o2.Counter.left;
  Alcotest.(check bool) "out" false (Counter.is_member c);
  (* Updates while out are free. *)
  check_float "free" 0.0 (Counter.on_update c).Counter.cost

let test_counter_q_scaling () =
  let c = Counter.create ~k:8.0 ~q:2.0 () in
  let o = Counter.on_read c ~responders:2 in
  check_float "q scales remote cost" 4.0 o.Counter.cost;
  check_float "counter" 4.0 (Counter.counter c)

let test_counter_set_k_clamps () =
  let c = Counter.create ~k:8.0 () in
  ignore (Counter.on_read c ~responders:2);
  ignore (Counter.on_read c ~responders:2);
  check_float "c=4" 4.0 (Counter.counter c);
  Counter.set_k c 2.0;
  check_float "clamped" 2.0 (Counter.counter c)

let test_counter_force_member () =
  let c = Counter.create ~k:4.0 () in
  Counter.force_member c true;
  Alcotest.(check bool) "in" true (Counter.is_member c);
  check_float "c=K on entry" 4.0 (Counter.counter c);
  Counter.force_member c false;
  check_float "c=0 on exit" 0.0 (Counter.counter c)

(* --- Offline OPT --------------------------------------------------------------- *)

let reads m n = Array.init n (fun _ -> Model.Read m)
let updates m n = Array.init n (fun _ -> Model.Update m)

let test_opt_all_reads_joins () =
  let p = params () in
  (* 10 reads by machine 2: join (4) + 10 local reads (10) = 14,
     vs staying out: 10 × 2 = 20. *)
  check_float "join wins" 14.0 (Offline_opt.machine_opt p ~machine:2 (reads 2 10))

let test_opt_few_reads_stays_out () =
  let p = params () in
  check_float "one read stays out" 2.0 (Offline_opt.machine_opt p ~machine:2 (reads 2 1))

let test_opt_all_updates_free () =
  let p = params () in
  check_float "stays out free" 0.0 (Offline_opt.machine_opt p ~machine:2 (updates 0 20))

let test_opt_failures_lower_remote_cost () =
  let p = params ~n:5 ~lambda:2 ~k:100.0 () in
  (* λ+1 = 3 responders; after one basic failure, 2. *)
  let seq = [| Model.Read 4; Model.Fail 0; Model.Read 4; Model.Recover 0; Model.Read 4 |] in
  check_float "3 + 2 + 3" 8.0 (Offline_opt.machine_opt p ~machine:4 seq)

let test_opt_schedule_consistent () =
  let p = params () in
  let seq = Array.concat [ reads 2 6; updates 0 3; reads 2 2 ] in
  let opt, sched = Offline_opt.machine_opt_schedule p ~machine:2 seq in
  (* Recompute the cost of the returned schedule. *)
  let cost = ref 0.0 and in_ = ref false and failed = ref 0 in
  Array.iteri
    (fun i e ->
      (match e with
      | Model.Fail _ -> incr failed
      | Model.Recover _ -> decr failed
      | _ -> ());
      if sched.(i) && not !in_ then cost := !cost +. p.Model.k;
      in_ := sched.(i);
      match e with
      | Model.Read m when m = 2 ->
          cost :=
            !cost
            +. if !in_ then p.Model.q else Model.remote_read_cost p ~failed:!failed
      | Model.Update _ -> if !in_ then cost := !cost +. 1.0
      | _ -> ())
    seq;
  check_float "schedule cost = opt" opt !cost

let test_opt_never_exceeds_static_choices =
  let prop =
    QCheck2.Test.make ~name:"OPT <= always-in and always-out" ~count:200
      QCheck2.Gen.(list_size (int_range 1 80) (pair bool (int_bound 3)))
      (fun spec ->
        let p = params () in
        let seq =
          Array.of_list
            (List.map (fun (r, m) -> if r then Model.Read m else Model.Update m) spec)
        in
        let opt = Offline_opt.machine_opt p ~machine:2 seq in
        let failed = 0 in
        let always_out =
          Array.fold_left
            (fun acc e ->
              match e with
              | Model.Read 2 -> acc +. Model.remote_read_cost p ~failed
              | _ -> acc)
            0.0 seq
        and always_in =
          p.Model.k
          +. Array.fold_left
               (fun acc e ->
                 match e with
                 | Model.Read 2 -> acc +. p.Model.q
                 | Model.Update _ -> acc +. 1.0
                 | _ -> acc)
               0.0 seq
        in
        opt <= always_out +. 1e-9 && opt <= always_in +. 1e-9)
  in
  prop

(* --- Theorem 2 ----------------------------------------------------------------- *)

let gen_sequence p =
  QCheck2.Gen.(
    list_size (int_range 1 200)
      (map
         (fun (r, m) -> if r then Model.Read (m mod p.Model.n) else Model.Update (m mod p.Model.n))
         (pair bool small_nat)))

let prop_theorem2 =
  let p = params ~n:5 ~lambda:1 ~k:6.0 () in
  QCheck2.Test.make ~name:"Basic algorithm within 3+λ/K of OPT" ~count:300
    (gen_sequence p) (fun spec ->
      let seq = Array.of_list spec in
      let r = Competitive.run_counter p seq in
      r.Competitive.ratio <= r.Competitive.bound +. 1e-9)

let prop_theorem2_q =
  let p = params ~n:5 ~lambda:2 ~k:8.0 ~q:3.0 () in
  QCheck2.Test.make ~name:"query-cost extension within 3+2λ/K" ~count:300
    (gen_sequence p) (fun spec ->
      let seq = Array.of_list spec in
      let r = Competitive.run_counter p seq in
      r.Competitive.ratio <= r.Competitive.bound +. 1e-9)

let test_theorem2_bound_value () =
  check_float "3 + λ/K" 3.25 (Competitive.theoretical_bound (params ~lambda:1 ~k:4.0 ()));
  check_float "3 + 2λ/K" 3.5
    (Competitive.theoretical_bound (params ~n:5 ~lambda:1 ~k:4.0 ~q:2.0 ()))

let test_adversary_approaches_bound () =
  let p = params ~n:4 ~lambda:1 ~k:12.0 () in
  let seq = Workload.Reqgen.rent_to_buy_adversary p ~cycles:30 in
  let r = Competitive.run_counter p seq in
  Alcotest.(check bool) "within bound" true (r.Competitive.ratio <= r.Competitive.bound +. 1e-9);
  Alcotest.(check bool)
    (Printf.sprintf "adversary forces ratio >= 2 (got %.3f)" r.Competitive.ratio)
    true (r.Competitive.ratio >= 2.0)

let test_hot_reader_beats_static () =
  (* Under sustained locality the counter joins and the online cost is
     far below the never-join cost. *)
  let p = params ~n:4 ~lambda:1 ~k:4.0 () in
  let seq = reads 2 200 in
  let r = Competitive.run_counter p seq in
  check_float "online = 2 remote reads incl. join + 198 local reads"
    (2.0 +. (4.0 +. 2.0) +. 198.0)
    r.Competitive.online;
  Alcotest.(check bool) "static remote cost much larger" true (400.0 > r.Competitive.online)

(* --- Theorem 3 (doubling/halving) ----------------------------------------------- *)

let gen_doubling_events p =
  QCheck2.Gen.(
    list_size (int_range 1 200)
      (map
         (fun (kind, m) ->
           let m = m mod p.Model.n in
           match kind mod 4 with
           | 0 | 1 -> Doubling.Read m
           | 2 -> Doubling.Ins m
           | _ -> Doubling.Del m)
         (pair small_nat small_nat)))

let prop_theorem3 =
  let p = params ~n:5 ~lambda:1 ~k:1.0 () in
  QCheck2.Test.make ~name:"doubling/halving within 6+2λ/K of OPT" ~count:300
    (gen_doubling_events p) (fun spec ->
      let events = Array.of_list spec in
      let r = Doubling.run p ~k_of_ell:(fun ell -> Float.max 1.0 (float_of_int ell)) ~ell0:4 events in
      r.Competitive.ratio <= r.Competitive.bound +. 1e-9)

let test_doubling_ell_trace () =
  let events = [| Doubling.Ins 0; Doubling.Ins 0; Doubling.Del 0; Doubling.Read 1 |] in
  Alcotest.(check (array int)) "trace" [| 3; 4; 3; 3 |] (Doubling.ell_trace ~ell0:2 events)

(* --- Paging (Theorem 4 substrate) ----------------------------------------------- *)

let test_lru_basic () =
  (* cache 2: 1 2 3 1 → faults 1,2,3 then 1 again (evicted by 3). *)
  Alcotest.(check int) "LRU faults" 4 (Paging.run Paging.Lru ~cache:2 [| 1; 2; 3; 1 |])

let test_fifo_vs_lru_difference () =
  (* Classic separating sequence: a b c a d a. With cache 3 both fault
     on a,b,c,d; LRU keeps 'a' hot, FIFO evicts it at d. *)
  let seq = [| 0; 1; 2; 0; 3; 0 |] in
  Alcotest.(check int) "LRU" 4 (Paging.run Paging.Lru ~cache:3 seq);
  Alcotest.(check int) "FIFO" 5 (Paging.run Paging.Fifo ~cache:3 seq)

let test_belady_on_known_sequence () =
  (* cache 2, seq 1 2 3 1 2: Belady evicts 2... faults: 1,2,3(evict 2? next
     use of 1 is idx3, of 2 is idx4 → evict 2), 2 faults again at idx4 →
     wait: at idx4, cache {1,3}, 2 faults (evict whichever) → 4 faults. *)
  Alcotest.(check int) "OPT faults" 4 (Paging.run Paging.Belady ~cache:2 [| 1; 2; 3; 1; 2 |])

let prop_belady_optimal =
  QCheck2.Test.make ~name:"Belady never beaten by online policies" ~count:200
    QCheck2.Gen.(list_size (int_range 1 120) (int_bound 6))
    (fun reqs ->
      let reqs = Array.of_list reqs in
      let opt = Paging.run Paging.Belady ~cache:3 reqs in
      List.for_all
        (fun a -> Paging.run ~seed:7 a ~cache:3 reqs >= opt)
        [ Paging.Lru; Paging.Fifo; Paging.Lfu; Paging.Random_evict; Paging.Marking ])

let test_paging_adversary_ratio () =
  let cache = 4 in
  let seq = Paging.adversarial_sequence ~length:400 Paging.Lru ~cache in
  let lru = Paging.run Paging.Lru ~cache seq in
  let opt = Paging.run Paging.Belady ~cache seq in
  Alcotest.(check int) "adversary faults LRU every time" 400 lru;
  let ratio = float_of_int lru /. float_of_int opt in
  Alcotest.(check bool)
    (Printf.sprintf "ratio %.2f close to k=%d" ratio cache)
    true
    (ratio >= float_of_int cache *. 0.8)

let test_marking_on_cyclic () =
  let cache = 4 in
  let seq = Paging.cyclic_sequence ~length:400 ~npages:(cache + 1) () in
  let mark = Paging.run ~seed:3 Paging.Marking ~cache seq in
  let lru = Paging.run Paging.Lru ~cache seq in
  let opt = Paging.run Paging.Belady ~cache seq in
  Alcotest.(check int) "LRU thrashes: faults every request" 400 lru;
  (* Marking pays ~H_k per phase of k requests vs k for LRU: expect
     roughly a 2x gap at k = 4 (H_4 ≈ 2.08). *)
  Alcotest.(check bool)
    (Printf.sprintf "marking (%d) well below LRU (%d)" mark lru)
    true
    (float_of_int mark < 0.65 *. float_of_int lru);
  Alcotest.(check bool) "OPT cheapest" true (opt <= mark)

(* --- Support selection (Theorem 4) ------------------------------------------------ *)

let gen_failures ~n = QCheck2.Gen.(list_size (int_range 1 150) (int_bound (n - 1)))

let prop_reduction_equivalence =
  QCheck2.Test.make ~name:"support selection = paging under the reduction" ~count:200
    (gen_failures ~n:7) (fun fs ->
      let failures = Array.of_list fs in
      List.for_all
        (fun strat ->
          (Support_selection.run strat ~n:7 ~lambda:2 ~failures).Support_selection.copies
          = Support_selection.run_via_paging strat ~n:7 ~lambda:2 ~failures)
        [ Support_selection.Lrf; Support_selection.Fifo_replace; Support_selection.Opt_replace ])

let prop_opt_replace_minimal =
  QCheck2.Test.make ~name:"OPT replacement minimal" ~count:200 (gen_failures ~n:6)
    (fun fs ->
      let failures = Array.of_list fs in
      let copies strat =
        (Support_selection.run ~seed:5 strat ~n:6 ~lambda:1 ~failures).Support_selection.copies
      in
      let opt = copies Support_selection.Opt_replace in
      List.for_all
        (fun s -> copies s >= opt)
        [
          Support_selection.Lrf;
          Support_selection.Fifo_replace;
          Support_selection.Random_replace;
          Support_selection.Marking_replace;
        ])

let test_group_size_invariant () =
  let failures = Array.init 100 (fun i -> i mod 6) in
  let o = Support_selection.run Support_selection.Lrf ~n:6 ~lambda:2 ~failures in
  Alcotest.(check int) "|wg| stays λ+1" 3 (List.length o.Support_selection.final_group)

let test_lrf_adversary_ratio () =
  let n = 8 and lambda = 2 in
  (* k = n − λ − 1 = 5: deterministic lower bound. *)
  let failures = Support_selection.adversarial_failures ~length:500 Support_selection.Lrf ~n ~lambda in
  let lrf = (Support_selection.run Support_selection.Lrf ~n ~lambda ~failures).Support_selection.copies in
  let opt = (Support_selection.run Support_selection.Opt_replace ~n ~lambda ~failures).Support_selection.copies in
  Alcotest.(check int) "adversary hits LRF every step" 500 lrf;
  let ratio = float_of_int lrf /. float_of_int opt in
  Alcotest.(check bool)
    (Printf.sprintf "ratio %.2f demonstrates near-k gap (k=5)" ratio)
    true (ratio >= 3.0)

let test_lff_prefers_fewest_failures () =
  (* Machines 2 and 3 are out of the group; 3 has failed twice, 2 once:
     on the next member failure LFF brings in machine 2. *)
  let failures = [| 3; 3; 2; 0 |] in
  let o = Support_selection.run Support_selection.Lff ~n:4 ~lambda:1 ~failures in
  Alcotest.(check bool) "machine 2 chosen over flakier 3" true
    (List.mem 2 o.Support_selection.final_group);
  Alcotest.(check bool) "3 stays out" false (List.mem 3 o.Support_selection.final_group)

let test_failures_of_outsiders_free () =
  let failures = Array.make 50 5 (* machine 5 is outside wg = {0,1} *) in
  let o = Support_selection.run Support_selection.Lrf ~n:6 ~lambda:1 ~failures in
  Alcotest.(check int) "no copies" 0 o.Support_selection.copies

let test_bgop_vs_lrf () =
  (* Machines 0 and 1 are chronically flaky; 2–5 are reliable. After
     the flaky pair racks up failures and the reliable members 2, 3, 4
     each crash once, LRF refills with machine 0 — its last crash has
     aged out — and pays again when the flaky tail hits it. BGOP's
     "good" tier (below-average failure frequency) keeps preferring the
     once-failed reliable machines, so the tail failures land outside
     the group and cost nothing. *)
  let failures = [| 0; 1; 0; 1; 0; 1; 2; 3; 4; 0; 1; 0; 1 |] in
  let run strat = Support_selection.run strat ~n:6 ~lambda:1 ~failures in
  let lrf = run Support_selection.Lrf and bgop = run Support_selection.Bgop in
  Alcotest.(check bool)
    (Printf.sprintf "BGOP cheaper than LRF on flaky-pair trace (%d < %d)"
       bgop.Support_selection.copies lrf.Support_selection.copies)
    true
    (bgop.Support_selection.copies < lrf.Support_selection.copies);
  (* coverage: BGOP's final group avoids the flaky pair entirely *)
  List.iter
    (fun m ->
      Alcotest.(check bool)
        (Printf.sprintf "flaky machine %d kept out of BGOP's group" m)
        false
        (List.mem m bgop.Support_selection.final_group))
    [ 0; 1 ];
  Alcotest.(check int) "|wg| stays λ+1" 2
    (List.length bgop.Support_selection.final_group);
  (* with no failure history BGOP coincides with LRF: both fill from
     the never-failed tier in id order *)
  let one = [| 0 |] in
  Alcotest.(check (list int)) "cold start matches LRF"
    (Support_selection.run Support_selection.Lrf ~n:6 ~lambda:1 ~failures:one)
      .Support_selection.final_group
    (Support_selection.run Support_selection.Bgop ~n:6 ~lambda:1 ~failures:one)
      .Support_selection.final_group;
  Alcotest.check_raises "no paging analogue"
    (Invalid_argument "Support_selection.paging_algo: BGOP has no paging analogue")
    (fun () -> ignore (Support_selection.paging_algo Support_selection.Bgop))

(* --- Live policy ------------------------------------------------------------------- *)

let test_live_counter_policy_joins_and_leaves () =
  let policy = Live_policy.counter ~k:4.0 () in
  let sys =
    Paso.System.create
      { Paso.System.default_config with n = 6; lambda = 1; policy }
  in
  let head = "hot" in
  let tmpl = Paso.Template.headed head [ Paso.Template.Any ] in
  let ins () =
    Paso.System.insert sys ~machine:0 [ Paso.Value.Sym head; Paso.Value.Int 1 ]
      ~on_done:(fun () -> ());
    Paso.System.run sys
  in
  ins ();
  let cls = (List.hd (Paso.System.known_classes sys)).Paso.Obj_class.name in
  let basic = Paso.System.basic_support sys ~cls in
  let reader = List.find (fun m -> not (List.mem m basic)) (List.init 6 Fun.id) in
  Alcotest.(check bool) "reader not yet replica" false
    (List.mem reader (Paso.System.write_group sys ~cls));
  (* Hot reads from one machine: counter reaches K, machine joins. *)
  for _ = 1 to 6 do
    Paso.System.read sys ~machine:reader tmpl ~on_done:(fun _ -> ());
    Paso.System.run sys
  done;
  Alcotest.(check bool) "reader joined wg" true
    (List.mem reader (Paso.System.write_group sys ~cls));
  (* A stream of updates drains the counter: machine leaves. *)
  for _ = 1 to 12 do
    ins ()
  done;
  Alcotest.(check bool) "reader left wg" false
    (List.mem reader (Paso.System.write_group sys ~cls));
  Alcotest.(check bool) "policy stats counted" true
    (Sim.Stats.count (Paso.System.stats sys) "policy.joins" >= 1
    && Sim.Stats.count (Paso.System.stats sys) "policy.leaves" >= 1)

let test_live_counter_policy_semantics_clean () =
  let policy = Live_policy.counter ~k:3.0 () in
  let sys =
    Paso.System.create { Paso.System.default_config with n = 6; lambda = 1; policy }
  in
  let rng = Sim.Rng.make 11 in
  for i = 1 to 60 do
    let m = Sim.Rng.int rng 6 in
    (match Sim.Rng.int rng 3 with
    | 0 ->
        Paso.System.insert sys ~machine:m [ Paso.Value.Sym "x"; Paso.Value.Int i ]
          ~on_done:(fun () -> ())
    | 1 ->
        Paso.System.read sys ~machine:m
          (Paso.Template.headed "x" [ Paso.Template.Any ])
          ~on_done:(fun _ -> ())
    | _ ->
        Paso.System.read_del sys ~machine:m
          (Paso.Template.headed "x" [ Paso.Template.Any ])
          ~on_done:(fun _ -> ()));
    Paso.System.run sys
  done;
  let violations = Paso.Semantics.check (Paso.System.history sys) in
  Alcotest.(check int) "no violations under adaptive policy" 0 (List.length violations)

(* A machine's §5.1 counters die with it: a reader two-thirds of the
   way to joining loses that progress across a crash/recover cycle, so
   one more read is not enough — it must re-earn the full K. *)
let test_live_crash_resets_counters () =
  let policy = Live_policy.counter ~k:10.0 () in
  let sys =
    Paso.System.create { Paso.System.default_config with n = 8; lambda = 2; policy }
  in
  let tmpl = Paso.Template.headed "hot" [ Paso.Template.Any ] in
  Paso.System.insert sys ~machine:0 [ Paso.Value.Sym "hot"; Paso.Value.Int 1 ]
    ~on_done:(fun () -> ());
  Paso.System.run sys;
  let cls = (List.hd (Paso.System.known_classes sys)).Paso.Obj_class.name in
  let basic = Paso.System.basic_support sys ~cls in
  let reader = List.find (fun m -> not (List.mem m basic)) (List.init 8 Fun.id) in
  let read () =
    Paso.System.read sys ~machine:reader tmpl ~on_done:(fun _ -> ());
    Paso.System.run sys
  in
  (* Each remote read adds q·(λ+1) = 3; three reads leave the counter
     at 9, one short of K = 10. *)
  for _ = 1 to 3 do read () done;
  Alcotest.(check bool) "not yet a member" false
    (List.mem reader (Paso.System.write_group sys ~cls));
  Paso.System.crash sys ~machine:reader;
  Paso.System.run sys;
  Paso.System.recover sys ~machine:reader;
  Paso.System.run sys;
  (* Had the counter survived, this read would cross K and join. *)
  read ();
  Alcotest.(check bool) "one post-crash read does not rejoin" false
    (List.mem reader (Paso.System.write_group sys ~cls));
  (* The policy is still live: re-earning the full K joins as usual. *)
  for _ = 1 to 4 do read () done;
  Alcotest.(check bool) "rejoined after re-earning K" true
    (List.mem reader (Paso.System.write_group sys ~cls))

(* The BGOP-backed read-group ordering: replicas with crash history are
   demoted behind never-failed ones, and the whole feature is inert by
   default (identity ordering, so every existing pin holds). *)
let test_live_bgop_tier_demotion () =
  let make bgop_reads =
    Paso.System.create { Paso.System.default_config with n = 8; lambda = 2; bgop_reads }
  in
  let sys = make true in
  let flaky = 5 in
  for _ = 1 to 3 do
    Paso.System.crash sys ~machine:flaky;
    Paso.System.run sys;
    Paso.System.recover sys ~machine:flaky;
    Paso.System.run sys
  done;
  Alcotest.(check int) "failure history recorded" 3
    (Paso.System.failure_counts sys).(flaky);
  Alcotest.(check (list int)) "flaky replica demoted behind clean ones" [ 1; 6; flaky ]
    (Paso.System.read_order sys [ flaky; 1; 6 ]);
  Alcotest.(check (list int)) "clean replicas keep their order" [ 2; 7; 3 ]
    (Paso.System.read_order sys [ 2; 7; 3 ]);
  (* Default off: same crash history, but the ordering hook is the
     identity — the determinism contract every replay pin leans on. *)
  let off = make false in
  for _ = 1 to 3 do
    Paso.System.crash off ~machine:flaky;
    Paso.System.run off;
    Paso.System.recover off ~machine:flaky;
    Paso.System.run off
  done;
  Alcotest.(check (list int)) "bgop_reads off is identity" [ flaky; 1; 6 ]
    (Paso.System.read_order off [ flaky; 1; 6 ])

let () =
  Alcotest.run "adaptive"
    [
      ( "counter",
        [
          Alcotest.test_case "join threshold" `Quick test_counter_join_threshold;
          Alcotest.test_case "local reads cap counter" `Quick test_counter_local_read_caps;
          Alcotest.test_case "leave at zero" `Quick test_counter_leave_at_zero;
          Alcotest.test_case "q scaling" `Quick test_counter_q_scaling;
          Alcotest.test_case "set_k clamps" `Quick test_counter_set_k_clamps;
          Alcotest.test_case "force_member" `Quick test_counter_force_member;
        ] );
      ( "offline_opt",
        [
          Alcotest.test_case "all reads joins" `Quick test_opt_all_reads_joins;
          Alcotest.test_case "few reads stays out" `Quick test_opt_few_reads_stays_out;
          Alcotest.test_case "updates free when out" `Quick test_opt_all_updates_free;
          Alcotest.test_case "failures lower remote cost" `Quick
            test_opt_failures_lower_remote_cost;
          Alcotest.test_case "schedule consistent" `Quick test_opt_schedule_consistent;
          QCheck_alcotest.to_alcotest test_opt_never_exceeds_static_choices;
        ] );
      ( "theorem2",
        [
          QCheck_alcotest.to_alcotest prop_theorem2;
          QCheck_alcotest.to_alcotest prop_theorem2_q;
          Alcotest.test_case "bound values" `Quick test_theorem2_bound_value;
          Alcotest.test_case "adversary approaches bound" `Quick
            test_adversary_approaches_bound;
          Alcotest.test_case "hot reader beats static" `Quick test_hot_reader_beats_static;
        ] );
      ( "theorem3",
        [
          QCheck_alcotest.to_alcotest prop_theorem3;
          Alcotest.test_case "ell trace" `Quick test_doubling_ell_trace;
        ] );
      ( "paging",
        [
          Alcotest.test_case "LRU basics" `Quick test_lru_basic;
          Alcotest.test_case "FIFO vs LRU" `Quick test_fifo_vs_lru_difference;
          Alcotest.test_case "Belady known sequence" `Quick test_belady_on_known_sequence;
          QCheck_alcotest.to_alcotest prop_belady_optimal;
          Alcotest.test_case "adversary exhibits k ratio" `Quick test_paging_adversary_ratio;
          Alcotest.test_case "marking beats LRU on cyclic" `Quick test_marking_on_cyclic;
        ] );
      ( "support_selection",
        [
          QCheck_alcotest.to_alcotest prop_reduction_equivalence;
          QCheck_alcotest.to_alcotest prop_opt_replace_minimal;
          Alcotest.test_case "group size invariant" `Quick test_group_size_invariant;
          Alcotest.test_case "LRF adversary gap" `Quick test_lrf_adversary_ratio;
          Alcotest.test_case "LFF prefers fewest failures" `Quick
            test_lff_prefers_fewest_failures;
          Alcotest.test_case "outsider failures free" `Quick test_failures_of_outsiders_free;
          Alcotest.test_case "BGOP tiers beat LRF on flaky pair" `Quick test_bgop_vs_lrf;
        ] );
      ( "live_policy",
        [
          Alcotest.test_case "joins and leaves in the live system" `Quick
            test_live_counter_policy_joins_and_leaves;
          Alcotest.test_case "semantics clean under adaptivity" `Quick
            test_live_counter_policy_semantics_clean;
          Alcotest.test_case "crash resets counters" `Quick
            test_live_crash_resets_counters;
          Alcotest.test_case "bgop read ordering demotes flaky replicas" `Quick
            test_live_bgop_tier_demotion;
        ] );
    ]
