(* Determinism guard for the hot-path optimisations (interned stats
   handles, sc-list memoisation, unboxed event heap, buffered trace and
   history): the optimisations must be wall-clock only. Two fixed
   fault-armed schedules are replayed through [Check.Runner] and every
   observable artifact — the rendered event-trace digest, the pretty
   JSON failure artifact, the message/cost totals — is pinned to the
   values produced by the unoptimised seed code (captured at the commit
   that introduced this test, before any hot-path change landed).

   If any of these checks fires, an "optimisation" changed simulated
   behaviour, not just wall-clock speed. Set PASO_PIN_PRINT=1 to print
   the actual values when intentionally re-pinning. *)

open Paso

let printing = Sys.getenv_opt "PASO_PIN_PRINT" = Some "1"

(* A tiny fixed LCG so the step lists are long, varied and stable
   (independent of Stdlib.Random and of QCheck seeds). *)
let lcg seed =
  let s = ref seed in
  fun bound ->
    s := ((!s * 1103515245) + 12345) land 0x3FFFFFFF;
    !s mod bound

let steps_a =
  let r = lcg 7 in
  List.init 140 (fun i ->
      match r 12 with
      | 0 | 1 | 2 | 3 -> Check.Schedule.Insert (r 8, r 3)
      | 4 | 5 | 6 -> Check.Schedule.Read (r 8, r 3)
      | 7 | 8 -> Check.Schedule.Take (r 8, r 3)
      | 9 -> Check.Schedule.Crash (r 8)
      | 10 -> Check.Schedule.Recover
      | _ -> if i mod 2 = 0 then Check.Schedule.Advance else Check.Schedule.Insert (r 8, r 3))

let config_a =
  {
    Check.Schedule.default with
    Check.Schedule.seed = 11;
    arms =
      [
        {
          Check.Schedule.arm_site = "vsync.gcast.deliver";
          arm_skip = 5;
          arm_times = 1;
          arm_action = "crash-hit-node";
        };
        {
          Check.Schedule.arm_site = "net.transmit";
          arm_skip = 40;
          arm_times = 3;
          arm_action = "delay:250";
        };
      ];
  }

let steps_b =
  let r = lcg 23 in
  List.init 110 (fun _ ->
      match r 10 with
      | 0 | 1 | 2 -> Check.Schedule.Insert (r 6, r 3)
      | 3 | 4 -> Check.Schedule.Read (r 6, r 3)
      | 5 | 6 -> Check.Schedule.Take (r 6, r 3)
      | 7 -> Check.Schedule.Crash (r 6)
      | 8 -> Check.Schedule.Recover
      | _ -> Check.Schedule.Advance)

let config_b =
  {
    Check.Schedule.default with
    Check.Schedule.n = 6;
    lambda = 2;
    classing = "signature";
    storage = "tree";
    policy = "counter:3";
    eager = true;
    wan_clusters = 2;
    repair = "lrf";
    seed = 5;
    arms =
      [
        {
          Check.Schedule.arm_site = "vsync.join.transfer";
          arm_skip = 2;
          arm_times = 1;
          arm_action = "crash-aux-node";
        };
      ];
  }

(* Schedule A again, but through the gcast batching layer with tight
   caps — the batched protocol gets its own replay pin (the unbatched
   pins above double as the proof that batching off is byte-identical
   to the pre-batching code). *)
let config_c =
  {
    config_a with
    Check.Schedule.batch_ops = 4;
    batch_bytes = 512;
    batch_hold = 300.0;
  }

(* Schedule A again with single-replica fast reads on: the fast path
   (freshness-token capture, one-member restrict, transparent fallback)
   gets its own replay pin. The unmodified pins above double as the
   proof that fast-read off is byte-identical to the pre-fast-read
   code. *)
let config_d = { config_a with Check.Schedule.fast_read = true }

(* A snapshot-bearing schedule: atomic multi-class scans interleaved
   with mutations, faults and recoveries. Pinned with every new feature
   off (config A's fault arms), and again through fast reads + the
   batching layer — the two-phase collect/confirm protocol must be
   deterministic in both regimes. *)
let steps_e =
  let r = lcg 41 in
  List.init 120 (fun _ ->
      match r 12 with
      | 0 | 1 | 2 -> Check.Schedule.Insert (r 8, r 3)
      | 3 | 4 -> Check.Schedule.Read (r 8, r 3)
      | 5 | 6 -> Check.Schedule.Take (r 8, r 3)
      | 7 -> Check.Schedule.Snapshot (r 8)
      | 8 -> Check.Schedule.Crash (r 8)
      | 9 -> Check.Schedule.Recover
      | _ -> Check.Schedule.Advance)

let config_f =
  {
    config_d with
    Check.Schedule.batch_ops = 4;
    batch_bytes = 512;
    batch_hold = 300.0;
  }

type golden = {
  g_trace_digest : string;
  g_artifact_digest : string;
  g_ops : int;
  g_completed : int;
  g_final_time : string;  (** %.17g *)
  g_net_msgs : int;
  g_net_msg_cost : string;  (** %.17g *)
  g_work_total : string;  (** %.17g *)
}

let run_pinned name config steps golden =
  let outcome, sys = Check.Runner.run_with_system config steps in
  let artifact =
    Check.Artifact.of_outcome config steps outcome |> Check.Artifact.to_json
    |> Check.Json.pretty
  in
  let stats = System.stats sys in
  let actual =
    {
      g_trace_digest = outcome.Check.Runner.trace_digest;
      g_artifact_digest = Digest.to_hex (Digest.string artifact);
      g_ops = outcome.Check.Runner.ops;
      g_completed = outcome.Check.Runner.completed;
      g_final_time = Printf.sprintf "%.17g" outcome.Check.Runner.final_time;
      g_net_msgs = Sim.Stats.count stats "net.msgs";
      g_net_msg_cost = Printf.sprintf "%.17g" (Sim.Stats.total stats "net.msg_cost");
      g_work_total = Printf.sprintf "%.17g" (Sim.Stats.total stats "work.total");
    }
  in
  if printing then
    Printf.printf
      "%s:\n\
      \  g_trace_digest = %S;\n\
      \  g_artifact_digest = %S;\n\
      \  g_ops = %d;\n\
      \  g_completed = %d;\n\
      \  g_final_time = %S;\n\
      \  g_net_msgs = %d;\n\
      \  g_net_msg_cost = %S;\n\
      \  g_work_total = %S;\n"
      name actual.g_trace_digest actual.g_artifact_digest actual.g_ops
      actual.g_completed actual.g_final_time actual.g_net_msgs actual.g_net_msg_cost
      actual.g_work_total;
  Alcotest.(check string) (name ^ ": trace digest") golden.g_trace_digest actual.g_trace_digest;
  Alcotest.(check string)
    (name ^ ": artifact JSON digest")
    golden.g_artifact_digest actual.g_artifact_digest;
  Alcotest.(check int) (name ^ ": ops") golden.g_ops actual.g_ops;
  Alcotest.(check int) (name ^ ": completed") golden.g_completed actual.g_completed;
  Alcotest.(check string) (name ^ ": final time") golden.g_final_time actual.g_final_time;
  Alcotest.(check int) (name ^ ": net.msgs") golden.g_net_msgs actual.g_net_msgs;
  Alcotest.(check string)
    (name ^ ": net.msg_cost")
    golden.g_net_msg_cost actual.g_net_msg_cost;
  Alcotest.(check string) (name ^ ": work.total") golden.g_work_total actual.g_work_total

(* Pinned from the seed (pre-optimisation) code. The artifact digests
   alone were re-pinned when the config JSON gained the "durable"
   field (a schema extension, decoded back-compatibly); every
   behavioural pin — trace digest, op counts, times, costs — is still
   the seed's value. *)

let golden_a =
  {
    g_trace_digest = "68dd03cf231594388876b9a14b72c42e";
    g_artifact_digest = "f4c7a98c9a9ba0569eb22d382847a501";
    g_ops = 110;
    g_completed = 87;
    g_final_time = "202995";
    g_net_msgs = 388;
    g_net_msg_cost = "202245";
    g_work_total = "137";
  }

let golden_b =
  {
    g_trace_digest = "635be0988beef980d6168fff95272036";
    g_artifact_digest = "3c0766296dde87c9f3041c608a013614";
    g_ops = 75;
    g_completed = 54;
    g_final_time = "457659.97244035749";
    g_net_msgs = 242;
    g_net_msg_cost = "573104";
    g_work_total = "284.20241449562968";
  }

(* Pinned at the commit that introduced batching. Note the batched run
   of schedule A beats the unbatched pin on every axis the cost model
   sees: 291 vs 388 messages, 153660 vs 202245 cost, and 89 vs 87
   completed ops (two reads that raced a crash unbatched now complete
   inside an earlier frame). *)
let golden_c =
  {
    g_trace_digest = "9ba0425dda0ef9388d5fcc6971e4e9a3";
    g_artifact_digest = "4037a64d57facdc2884e72d8309ab9b1";
    g_ops = 110;
    g_completed = 89;
    g_final_time = "154410";
    g_net_msgs = 291;
    g_net_msg_cost = "153660";
    g_work_total = "142";
  }

(* Pinned at the commit that introduced fast reads and snapshots. *)
let golden_d =
  {
    g_trace_digest = "55c08882341a765e6e5b1810b16c8117";
    g_artifact_digest = "538299eabcdd1470fede94ed6786f0ed";
    g_ops = 110;
    g_completed = 86;
    g_final_time = "236600";
    g_net_msgs = 453;
    g_net_msg_cost = "235850";
    g_work_total = "163";
  }

let golden_e =
  {
    g_trace_digest = "02fb8ef537ed3e31d5bfc6bc5b21ee06";
    g_artifact_digest = "51e114c250fb5b6994faf0cdfd20895c";
    g_ops = 65;
    g_completed = 64;
    g_final_time = "527626";
    g_net_msgs = 815;
    g_net_msg_cost = "419912";
    g_work_total = "344";
  }

let golden_f =
  {
    g_trace_digest = "c094d394d8a0d1531c5a65ad4bad3104";
    g_artifact_digest = "01e517b373c8ff78195a7b189a88bfe8";
    g_ops = 65;
    g_completed = 64;
    g_final_time = "453338";
    g_net_msgs = 502;
    g_net_msg_cost = "259872";
    g_work_total = "232";
  }

let test_lan () = run_pinned "lan/head/faults" config_a steps_a golden_a
let test_wan () = run_pinned "wan/signature/repair" config_b steps_b golden_b
let test_batched () = run_pinned "lan/head/faults/batched" config_c steps_a golden_c
let test_fast_read () = run_pinned "lan/head/faults/fast-read" config_d steps_a golden_d
let test_snapshots () = run_pinned "lan/snapshots" config_a steps_e golden_e

let test_snapshots_fast_batched () =
  run_pinned "lan/snapshots/fast-read/batched" config_f steps_e golden_f

(* The same schedule twice in one process must agree with itself —
   catches accidental global mutable state in the optimised paths. *)
let test_self_agreement () =
  let o1 = Check.Runner.run config_a steps_a in
  let o2 = Check.Runner.run config_a steps_a in
  Alcotest.(check string)
    "same digest" o1.Check.Runner.trace_digest o2.Check.Runner.trace_digest

let () =
  Alcotest.run "determinism-guard"
    [
      ( "pinned",
        [
          Alcotest.test_case "lan schedule byte-identical" `Quick test_lan;
          Alcotest.test_case "wan schedule byte-identical" `Quick test_wan;
          Alcotest.test_case "batched schedule byte-identical" `Quick test_batched;
          Alcotest.test_case "fast-read schedule byte-identical" `Quick test_fast_read;
          Alcotest.test_case "snapshot schedule byte-identical" `Quick test_snapshots;
          Alcotest.test_case "snapshot+fast-read+batched byte-identical" `Quick
            test_snapshots_fast_batched;
          Alcotest.test_case "self agreement" `Quick test_self_agreement;
        ] );
    ]
