(* Coverage for the smaller surfaces: printers, validation/error paths,
   direct-message plumbing, introspection accessors — the parts a
   downstream user hits first when something is misconfigured. *)

open Paso

(* --- printers ------------------------------------------------------------- *)

let test_view_pp () =
  let v = Vsync.View.make ~group:"g" ~view_id:3 ~members:[ 2; 0; 2 ] in
  Alcotest.(check string) "pp" "g@v3{0,2}" (Format.asprintf "%a" Vsync.View.pp v);
  Alcotest.(check int) "dedup size" 2 (Vsync.View.size v);
  Alcotest.(check bool) "mem" true (Vsync.View.mem v 2);
  Alcotest.(check bool) "equal self" true (Vsync.View.equal v v)

let test_template_pp () =
  let t =
    Template.make
      ~where:("w", fun _ -> true)
      [ Template.Eq (Value.Sym "h"); Template.Any; Template.Type_is "int";
        Template.Range (Value.Int 1, Value.Int 5); Template.Pred ("p", fun _ -> true) ]
  in
  Alcotest.(check string) "pp" "{h, _, ?int, [1..5], <p> where w}" (Template.to_string t)

let test_policy_pp () =
  Alcotest.(check string) "event" "remote-read(3,ell=7)"
    (Format.asprintf "%a" Policy.pp_event (Policy.Remote_read { responders = 3; ell = 7; wan = false }));
  Alcotest.(check string) "decision" "join"
    (Format.asprintf "%a" Policy.pp_decision Policy.Join)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_competitive_pp () =
  let r =
    { Adaptive.Competitive.online = 10.0; opt = 5.0; ratio = 2.0; joins = 1; leaves = 0;
      bound = 3.5 }
  in
  let s = Format.asprintf "%a" Adaptive.Competitive.pp_result r in
  Alcotest.(check bool) "mentions ratio" true (contains s "ratio=2.000")

let test_stats_pp () =
  let s = Sim.Stats.create () in
  Sim.Stats.incr s "a";
  Sim.Stats.add s "b" 1.5;
  Sim.Stats.observe s "c" 2.0;
  let str = Format.asprintf "%a" Sim.Stats.pp s in
  Alcotest.(check bool) "renders all keys" true
    (String.length str > 0)

let test_model_pp_event () =
  Alcotest.(check string) "read" "R3"
    (Format.asprintf "%a" Adaptive.Model.pp_event (Adaptive.Model.Read 3));
  Alcotest.(check string) "doubling ins" "I2"
    (Format.asprintf "%a" Adaptive.Doubling.pp_event (Adaptive.Doubling.Ins 2))

(* --- validation / error paths ----------------------------------------------- *)

let test_model_validation () =
  let p = Adaptive.Model.make_params ~n:4 ~lambda:1 ~basic:[ 0; 1 ] ~k:2.0 () in
  let bad events msg =
    Alcotest.check_raises msg (Invalid_argument msg) (fun () ->
        Adaptive.Model.validate_sequence p events)
  in
  bad [| Adaptive.Model.Read 9 |] "Model: machine out of range";
  bad [| Adaptive.Model.Fail 3 |] "Model: Fail of a non-basic machine";
  bad [| Adaptive.Model.Fail 0; Adaptive.Model.Fail 0 |] "Model: double Fail";
  bad
    [| Adaptive.Model.Fail 0; Adaptive.Model.Fail 1 |]
    "Model: more than lambda simultaneous failures";
  bad [| Adaptive.Model.Recover 0 |] "Model: Recover of a live machine"

let test_model_params_validation () =
  Alcotest.check_raises "basic size"
    (Invalid_argument "Model.make_params: |B(C)| must be lambda+1") (fun () ->
      ignore (Adaptive.Model.make_params ~n:4 ~lambda:1 ~basic:[ 0 ] ~k:1.0 ()));
  Alcotest.check_raises "bad k" (Invalid_argument "Model.make_params: k must be positive")
    (fun () -> ignore (Adaptive.Model.make_params ~n:4 ~lambda:1 ~basic:[ 0; 1 ] ~k:0.0 ()))

let test_system_config_validation () =
  Alcotest.check_raises "lambda too big"
    (Invalid_argument "System.create: lambda + 1 > n") (fun () ->
      ignore (System.create { System.default_config with n = 2; lambda = 2 }));
  Alcotest.check_raises "negative lambda"
    (Invalid_argument "System.create: negative lambda") (fun () ->
      ignore (System.create { System.default_config with lambda = -1 }))

let test_paging_errors () =
  Alcotest.check_raises "belady needs future"
    (Invalid_argument "Paging.create: Belady needs the future") (fun () ->
      ignore (Adaptive.Paging.create ~algo:Adaptive.Paging.Belady ~cache:2 ()));
  Alcotest.check_raises "adversary only deterministic"
    (Invalid_argument "Paging.adversarial_sequence: only for deterministic online policies")
    (fun () ->
      ignore (Adaptive.Paging.adversarial_sequence Adaptive.Paging.Marking ~cache:2));
  let t =
    Adaptive.Paging.create ~future:[| 1; 2 |] ~algo:Adaptive.Paging.Belady ~cache:2 ()
  in
  ignore (Adaptive.Paging.access t 1);
  Alcotest.check_raises "off-sequence Belady"
    (Invalid_argument "Paging.access: Belady driven off its future sequence") (fun () ->
      ignore (Adaptive.Paging.access t 7))

let test_counter_validation () =
  Alcotest.check_raises "bad k" (Invalid_argument "Counter.create: k <= 0") (fun () ->
      ignore (Adaptive.Counter.create ~k:0.0 ()));
  let c = Adaptive.Counter.create ~k:2.0 () in
  Alcotest.check_raises "bad set_k" (Invalid_argument "Counter.set_k: k <= 0") (fun () ->
      Adaptive.Counter.set_k c (-1.0))

(* --- vsync plumbing ------------------------------------------------------------ *)

let test_send_direct () =
  let eng = Sim.Engine.create () in
  let stats = Sim.Stats.create () in
  let fabric = Net.Fabric.shared_bus eng (Net.Cost_model.v ~alpha:100.0 ~beta:1.0) stats in
  let noop_cbs =
    {
      Vsync.deliver = (fun ~node:_ ~group:_ ~from:_ () -> (None, 0.0));
      resp_size = (fun _ -> 0);
      state_of = (fun ~node:_ ~group:_ -> ((), 0));
      state_delta = (fun ~node:_ ~group:_ ~joiner:_ -> None);
      install_state = (fun ~node:_ ~group:_ () -> ());
      on_view = (fun ~node:_ _ -> ());
      on_evict = (fun ~node:_ ~group:_ -> ());
      on_group_lost = (fun ~group:_ -> ());
    }
  in
  let vs = Vsync.make ~engine:eng ~fabric ~stats ~trace:(Sim.Trace.create ()) ~n:3 noop_cbs in
  let got = ref 0 in
  Vsync.send_direct vs ~from:0 ~dst:1 ~size:24 (fun () -> incr got);
  (* A direct to a crashed node is dropped. *)
  Vsync.crash vs ~node:2;
  Vsync.send_direct vs ~from:0 ~dst:2 ~size:24 (fun () -> incr got);
  Sim.Engine.run eng;
  Alcotest.(check int) "delivered once" 1 !got;
  Alcotest.(check int) "cost charged for both" 2 (Sim.Stats.count stats "net.msgs")

(* --- introspection --------------------------------------------------------------- *)

let test_replicas_accessor () =
  let sys = System.create { System.default_config with n = 6; lambda = 2 } in
  System.insert sys ~machine:0 [ Value.Sym "r"; Value.Int 1 ] ~on_done:(fun () -> ());
  System.insert sys ~machine:1 [ Value.Sym "r"; Value.Int 2 ] ~on_done:(fun () -> ());
  System.run sys;
  let cls = (List.hd (System.known_classes sys)).Obj_class.name in
  let reps = System.replicas sys ~cls in
  Alcotest.(check int) "lambda+1 replicas" 3 (List.length reps);
  List.iter
    (fun (_, uids) -> Alcotest.(check int) "each holds both objects" 2 (List.length uids))
    reps;
  Alcotest.(check bool) "identical order" true
    (match reps with
    | (_, first) :: rest -> List.for_all (fun (_, u) -> u = first) rest
    | [] -> false)

let test_live_count_and_class_of () =
  let sys = System.create { System.default_config with n = 6 } in
  let o = Pobj.make ~uid:(Uid.make ~machine:0 ~serial:0) [ Value.Sym "z"; Value.Int 1 ] in
  let cls = System.class_of_obj sys o in
  Alcotest.(check int) "empty class" 0 (System.live_count sys ~cls);
  System.insert sys ~machine:0 [ Value.Sym "z"; Value.Int 1 ] ~on_done:(fun () -> ());
  System.run sys;
  Alcotest.(check int) "one live object" 1 (System.live_count sys ~cls)

let () =
  Alcotest.run "misc"
    [
      ( "printers",
        [
          Alcotest.test_case "View.pp" `Quick test_view_pp;
          Alcotest.test_case "Template.pp" `Quick test_template_pp;
          Alcotest.test_case "Policy pp" `Quick test_policy_pp;
          Alcotest.test_case "Competitive.pp_result" `Quick test_competitive_pp;
          Alcotest.test_case "Stats.pp" `Quick test_stats_pp;
          Alcotest.test_case "Model/Doubling pp_event" `Quick test_model_pp_event;
        ] );
      ( "validation",
        [
          Alcotest.test_case "Model.validate_sequence" `Quick test_model_validation;
          Alcotest.test_case "Model.make_params" `Quick test_model_params_validation;
          Alcotest.test_case "System config" `Quick test_system_config_validation;
          Alcotest.test_case "Paging errors" `Quick test_paging_errors;
          Alcotest.test_case "Counter errors" `Quick test_counter_validation;
        ] );
      ("vsync", [ Alcotest.test_case "send_direct" `Quick test_send_direct ]);
      ( "introspection",
        [
          Alcotest.test_case "System.replicas" `Quick test_replicas_accessor;
          Alcotest.test_case "live_count / class_of" `Quick test_live_count_and_class_of;
        ] );
    ]
