(* Model-based testing: in the absence of faults and concurrency (one
   operation at a time, run to quiescence), the distributed PASO system
   must behave exactly like a trivial sequential tuple space — same
   results, same objects, same order — for every storage kind. The
   reference implementation is twenty lines of list manipulation;
   450 random schedules are compared per run of the suite. *)

open Paso

(* --- the sequential reference ------------------------------------------------ *)

module Reference = struct
  type t = {
    mutable space : Pobj.t list; (* insertion order *)
    serials : int array;
  }

  let create ~n = { space = []; serials = Array.make n 0 }

  let insert t ~machine fields =
    let serial = t.serials.(machine) in
    t.serials.(machine) <- serial + 1;
    let o = Pobj.make ~uid:(Uid.make ~machine ~serial) fields in
    t.space <- t.space @ [ o ];
    o

  let read t tmpl = List.find_opt (Template.matches tmpl) t.space

  let take t tmpl =
    match read t tmpl with
    | Some o ->
        t.space <- List.filter (fun x -> not (Pobj.equal x o)) t.space;
        Some o
    | None -> None
end

(* --- schedule generation ------------------------------------------------------ *)

type op =
  | Op_ins of int * int * int (* machine, head, value *)
  | Op_read of int * int * [ `Any | `Exact of int | `Range of int * int | `Even ]
  | Op_take of int * int * [ `Any | `Exact of int | `Range of int * int | `Even ]

let heads = [| "a"; "b"; "c" |]

let gen_spec =
  QCheck2.Gen.(
    oneof
      [
        return `Any;
        map (fun v -> `Exact (v mod 20)) small_nat;
        map (fun (lo, len) -> `Range (lo mod 20, (lo mod 20) + (len mod 10))) (pair small_nat small_nat);
        return `Even;
      ])

let gen_op ~n =
  QCheck2.Gen.(
    oneof
      [
        map
          (fun (m, h, v) -> Op_ins (m mod n, h mod 3, v mod 20))
          (triple small_nat small_nat small_nat);
        map (fun ((m, h), s) -> Op_read (m mod n, h mod 3, s)) (pair (pair small_nat small_nat) gen_spec);
        map (fun ((m, h), s) -> Op_take (m mod n, h mod 3, s)) (pair (pair small_nat small_nat) gen_spec);
      ])

let tmpl_of h spec =
  let second =
    match spec with
    | `Any -> Template.Any
    | `Exact v -> Template.Eq (Value.Int v)
    | `Range (lo, hi) -> Template.Range (Value.Int lo, Value.Int hi)
    | `Even -> Template.Pred ("even", function Value.Int i -> i mod 2 = 0 | _ -> false)
  in
  Template.headed heads.(h) [ second ]

(* --- the comparison ------------------------------------------------------------ *)

let equivalence_prop ~name ~storage =
  let n = 6 in
  QCheck2.Test.make ~name ~count:150
    QCheck2.Gen.(list_size (int_range 1 60) (gen_op ~n))
    (fun ops ->
      let sys = System.create { System.default_config with n; lambda = 2; storage } in
      let reference = Reference.create ~n in
      let mismatch = ref None in
      List.iter
        (fun op ->
          match op with
          | Op_ins (m, h, v) ->
              let fields = [ Value.Sym heads.(h); Value.Int v ] in
              let expected = Reference.insert reference ~machine:m fields in
              System.insert sys ~machine:m fields ~on_done:(fun () -> ());
              System.run sys;
              ignore expected
          | Op_read (m, h, spec) ->
              let tmpl = tmpl_of h spec in
              let expected = Reference.read reference tmpl in
              System.read sys ~machine:m tmpl ~on_done:(fun got ->
                  if
                    Option.map Pobj.uid got <> Option.map Pobj.uid expected
                    && !mismatch = None
                  then mismatch := Some ("read", expected, got));
              System.run sys
          | Op_take (m, h, spec) ->
              let tmpl = tmpl_of h spec in
              let expected = Reference.take reference tmpl in
              System.read_del sys ~machine:m tmpl ~on_done:(fun got ->
                  if
                    Option.map Pobj.uid got <> Option.map Pobj.uid expected
                    && !mismatch = None
                  then mismatch := Some ("take", expected, got));
              System.run sys)
        ops;
      match !mismatch with
      | None -> true
      | Some (kind, expected, got) ->
          QCheck2.Test.fail_reportf "%s diverged: reference=%s system=%s" kind
            (match expected with Some o -> Pobj.to_string o | None -> "fail")
            (match got with Some o -> Pobj.to_string o | None -> "fail"))

let () =
  Alcotest.run "model_ref"
    [
      ( "system == sequential reference",
        List.map
          (fun (name, storage) ->
            QCheck_alcotest.to_alcotest
              (equivalence_prop
                 ~name:("equivalence with " ^ name ^ " store")
                 ~storage))
          [ ("hash", Storage.Hash); ("tree", Storage.Tree); ("linear", Storage.Linear);
            ("multi", Storage.Multi) ] );
    ]
