(* Randomised whole-system convergence: arbitrary interleavings of
   PASO operations, crashes and recoveries (never more than λ down)
   must leave, at quiescence,
     - all replicas of every class identical (virtual synchrony),
     - a history satisfying the §2 semantics,
     - the fault-tolerance condition intact,
   across classing strategies, storage kinds and policies. This is the
   closest thing to a model check the simulator affords: ~400 random
   schedules per run of the suite. *)

open Paso

type step =
  | S_insert of int * int (* machine hint, head hint *)
  | S_read of int * int
  | S_take of int * int
  | S_crash of int
  | S_recover
  | S_advance

let heads = [| "a"; "b"; "c" |]

let gen_step =
  QCheck2.Gen.(
    oneof
      [
        map (fun (m, h) -> S_insert (m, h)) (pair small_nat small_nat);
        map (fun (m, h) -> S_read (m, h)) (pair small_nat small_nat);
        map (fun (m, h) -> S_take (m, h)) (pair small_nat small_nat);
        map (fun m -> S_crash m) small_nat;
        return S_recover;
        return S_advance;
      ])

let run_schedule ?group_map ?topology ?(eager = false) ~n ~lambda ~classing ~storage
    ~policy steps =
  let sys =
    System.create
      {
        System.default_config with
        n;
        lambda;
        classing;
        storage;
        policy;
        group_map;
        eager_reads = eager;
        topology =
          (match topology with Some t -> t | None -> System.default_config.System.topology);
      }
  in
  let down = ref [] in
  let tmpl h = Template.headed heads.(h mod Array.length heads) [ Template.Any ] in
  let fields i h =
    [ Value.Sym heads.(h mod Array.length heads); Value.Int i ]
  in
  List.iteri
    (fun i step ->
      let up = List.filter (System.is_up sys) (List.init n Fun.id) in
      match step with
      | S_insert (m, h) -> begin
          match up with
          | [] -> ()
          | _ ->
              let m = List.nth up (m mod List.length up) in
              System.insert sys ~machine:m (fields i h) ~on_done:(fun () -> ())
        end
      | S_read (m, h) -> begin
          match up with
          | [] -> ()
          | _ ->
              let m = List.nth up (m mod List.length up) in
              System.read sys ~machine:m (tmpl h) ~on_done:(fun _ -> ())
        end
      | S_take (m, h) -> begin
          match up with
          | [] -> ()
          | _ ->
              let m = List.nth up (m mod List.length up) in
              System.read_del sys ~machine:m (tmpl h) ~on_done:(fun _ -> ())
        end
      | S_crash m ->
          if List.length !down < lambda then begin
            match up with
            | [] -> ()
            | _ ->
                let m = List.nth up (m mod List.length up) in
                System.crash sys ~machine:m;
                down := m :: !down
          end
      | S_recover -> begin
          match !down with
          | m :: rest ->
              System.recover sys ~machine:m;
              down := rest
          | [] -> ()
        end
      | S_advance -> System.run_until sys (System.now sys +. 20000.0))
    steps;
  (* Everyone comes back; the system drains. *)
  List.iter (fun m -> System.recover sys ~machine:m) !down;
  System.run sys;
  sys

let convergence_prop ?group_map ?topology ?eager ~name ~classing ~storage ~policy_maker () =
  QCheck2.Test.make ~name ~count:80
    QCheck2.Gen.(list_size (int_range 10 120) gen_step)
    (fun steps ->
      let sys =
        run_schedule ?group_map ?topology ?eager ~n:8 ~lambda:2 ~classing ~storage
          ~policy:(policy_maker ()) steps
      in
      match Check.Invariants.all sys with
      | [] -> true
      | r :: _ ->
          QCheck2.Test.fail_reportf "%s"
            (Format.asprintf "%a" Check.Invariants.pp_report r))

let props =
  [
    convergence_prop ~name:"convergence: head classing, hash store, static"
      ~classing:Obj_class.By_head ~storage:Storage.Hash
      ~policy_maker:(fun () -> Policy.static) ();
    convergence_prop ~name:"convergence: signature classing, tree store, static"
      ~classing:Obj_class.By_signature ~storage:Storage.Tree
      ~policy_maker:(fun () -> Policy.static) ();
    convergence_prop ~name:"convergence: single class, linear store, static"
      ~classing:Obj_class.Single_class ~storage:Storage.Linear
      ~policy_maker:(fun () -> Policy.static) ();
    convergence_prop ~name:"convergence: arity classing, multi store, static"
      ~classing:Obj_class.By_arity ~storage:Storage.Multi
      ~policy_maker:(fun () -> Policy.static) ();
    convergence_prop ~name:"convergence: head classing, hash store, counter policy"
      ~classing:Obj_class.By_head ~storage:Storage.Hash
      ~policy_maker:(fun () -> Adaptive.Live_policy.counter ~k:4.0 ()) ();
    convergence_prop ~name:"convergence: head classing, multi store, doubling policy"
      ~classing:Obj_class.By_head ~storage:Storage.Multi
      ~policy_maker:(fun () ->
        Adaptive.Live_policy.doubling
          ~k_of_ell:(fun ell -> Float.max 2.0 (float_of_int ell)) ()) ();
    convergence_prop ~name:"convergence: coalesced write groups"
      ~group_map:(fun _ -> "shared") ~classing:Obj_class.By_head ~storage:Storage.Hash
      ~policy_maker:(fun () -> Policy.static) ();
    convergence_prop ~name:"convergence: eager reads"
      ~eager:true ~classing:Obj_class.By_head ~storage:Storage.Hash
      ~policy_maker:(fun () -> Policy.static) ();
    convergence_prop ~name:"convergence: WAN topology, counter policy"
      ~topology:
        (System.Wan
           { clusters = Array.init 8 (fun m -> m mod 2);
             remote = Net.Cost_model.v ~alpha:5000.0 ~beta:4.0 })
      ~classing:Obj_class.By_head ~storage:Storage.Hash
      ~policy_maker:(fun () -> Adaptive.Live_policy.counter ~k:4.0 ()) ();
  ]

(* Repair-enabled convergence needs its own runner (different config). *)
let repair_prop =
  QCheck2.Test.make ~name:"convergence: LRF repair under crash schedules" ~count:60
    QCheck2.Gen.(list_size (int_range 10 120) gen_step)
    (fun steps ->
      let sys =
        let n = 8 and lambda = 2 in
        let base =
          { System.default_config with n; lambda; repair = Some Repair.Lrf }
        in
        let sys = System.create base in
        let down = ref [] in
        List.iteri
          (fun i step ->
            let up = List.filter (System.is_up sys) (List.init n Fun.id) in
            match (step, up) with
            | S_insert (m, h), _ :: _ ->
                let m = List.nth up (m mod List.length up) in
                System.insert sys ~machine:m
                  [ Value.Sym heads.(h mod 3); Value.Int i ]
                  ~on_done:(fun () -> ())
            | S_read (m, h), _ :: _ ->
                let m = List.nth up (m mod List.length up) in
                System.read sys ~machine:m
                  (Template.headed heads.(h mod 3) [ Template.Any ])
                  ~on_done:(fun _ -> ())
            | S_take (m, h), _ :: _ ->
                let m = List.nth up (m mod List.length up) in
                System.read_del sys ~machine:m
                  (Template.headed heads.(h mod 3) [ Template.Any ])
                  ~on_done:(fun _ -> ())
            | S_crash m, _ :: _ when List.length !down < lambda ->
                let m = List.nth up (m mod List.length up) in
                System.crash sys ~machine:m;
                down := m :: !down
            | S_recover, _ -> begin
                match !down with
                | m :: rest ->
                    System.recover sys ~machine:m;
                    down := rest
                | [] -> ()
              end
            | S_advance, _ -> System.run_until sys (System.now sys +. 20000.0)
            | _ -> ())
          steps;
        List.iter (fun m -> System.recover sys ~machine:m) !down;
        System.run sys;
        sys
      in
      Check.Invariants.all sys = [])

(* Reproducibility: QCheck draws from a seed printed at startup, so a
   failing run can be replayed exactly with
     PASO_QCHECK_SEED=<seed> dune build @runtest-convergence
   Each property gets its own seed-derived stream, so reproduction
   survives alcotest test filtering. *)
let seed =
  match Sys.getenv_opt "PASO_QCHECK_SEED" with
  | Some s -> (
      match int_of_string_opt s with
      | Some i -> i
      | None -> failwith "PASO_QCHECK_SEED must be an integer")
  | None ->
      Random.self_init ();
      Random.int 1_000_000_000

let () =
  Printf.printf "qcheck seed: %d (set PASO_QCHECK_SEED=%d to reproduce)\n%!" seed seed;
  let to_alcotest i p =
    QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| seed; i |]) p
  in
  Alcotest.run "convergence"
    [
      ("random schedules", List.mapi to_alcotest props);
      ("with repair", [ to_alcotest (List.length props) repair_prop ]);
    ]
