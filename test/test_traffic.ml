(* The traffic harness (lib/traffic): histogram quantile pins and
   accuracy bound, scenario JSON round-trip and malformed-input errors,
   the replay determinism pins (bare ≡ 1-shard; a fixed shard count is
   byte-identical at any domain count), and a flash-crowd run through
   the §2 invariant checks.

   Set PASO_PIN_PRINT=1 to print actual values when intentionally
   re-pinning. *)

let printing = Sys.getenv_opt "PASO_PIN_PRINT" = Some "1"

(* ------------------------------------------------------------------ *)
(* Histogram                                                           *)
(* ------------------------------------------------------------------ *)

(* The ad-hoc scan the histogram replaced in bench/mix.ml: nearest-rank
   over the sorted samples. [Hist.quantile] must rank identically and
   land within its documented 1/128 lower-edge error of this value. *)
let legacy_rank samples ~permille =
  match List.sort compare samples with
  | [] -> 0.0
  | sorted ->
      let n = List.length sorted in
      List.nth sorted (min (n - 1) (n * permille / 1000))

let test_hist_accuracy () =
  let rng = Sim.Rng.make 7 in
  (* latency-shaped samples spanning several octaves *)
  let samples =
    List.init 5000 (fun _ ->
        let u = Sim.Rng.float rng 1.0 in
        50.0 +. (3.0e5 *. u *. u *. u))
  in
  let h = Traffic.Hist.create () in
  List.iter (Traffic.Hist.record h) samples;
  Alcotest.(check int) "count" 5000 (Traffic.Hist.count h);
  List.iter
    (fun permille ->
      let exact = legacy_rank samples ~permille in
      let q = Traffic.Hist.quantile h ~permille in
      let name = Printf.sprintf "p%d within 1/128 below exact" permille in
      Alcotest.(check bool) name true
        (q <= exact && q >= exact /. (1.0 +. (1.0 /. 128.0))))
    [ 500; 900; 990; 999 ];
  (* the top rank returns the exact maximum, not a bucket edge *)
  let mx = List.fold_left Float.max neg_infinity samples in
  Alcotest.(check (float 0.0)) "p1000 is the exact max" mx
    (Traffic.Hist.quantile h ~permille:1000);
  Alcotest.check_raises "permille out of range"
    (Invalid_argument "Hist.quantile: permille out of [0, 1000]")
    (fun () -> ignore (Traffic.Hist.quantile h ~permille:1001))

let test_hist_pins () =
  (* Values of the form (0.5 + k/256)·2^e are bucket lower edges, so
     the histogram reports them exactly — quantiles over them are
     pinned constants, not approximations. *)
  let h = Traffic.Hist.create () in
  let edges = List.init 100 (fun i -> (0.5 +. (float_of_int i /. 256.0)) *. 8.0) in
  List.iter (Traffic.Hist.record h) edges;
  if printing then
    Format.printf "hist pins: p50=%g p90=%g p99=%g p999=%g@." (Traffic.Hist.p50 h)
      (Traffic.Hist.p90 h) (Traffic.Hist.p99 h) (Traffic.Hist.p999 h);
  (* nearest-rank over 100 samples: rank 51/91/100/100 → edges 50/90/99/99 *)
  Alcotest.(check (float 0.0)) "p50" (edges |> Fun.flip List.nth 50) (Traffic.Hist.p50 h);
  Alcotest.(check (float 0.0)) "p90" (edges |> Fun.flip List.nth 90) (Traffic.Hist.p90 h);
  Alcotest.(check (float 0.0)) "p99" (edges |> Fun.flip List.nth 99) (Traffic.Hist.p99 h);
  Alcotest.(check (float 0.0)) "p999" (edges |> Fun.flip List.nth 99) (Traffic.Hist.p999 h);
  (* zero bucket: non-positive samples count but rank below everything *)
  Traffic.Hist.record h 0.0;
  Traffic.Hist.record h (-1.0);
  Alcotest.(check int) "zero samples counted" 102 (Traffic.Hist.count h);
  Alcotest.(check (float 0.0)) "p0 is the zero bucket" 0.0
    (Traffic.Hist.quantile h ~permille:0);
  (* merge ≡ recording everything into one histogram, render-identical *)
  let a = Traffic.Hist.create () and b = Traffic.Hist.create () in
  let one = Traffic.Hist.create () in
  List.iteri
    (fun i x ->
      Traffic.Hist.record (if i mod 2 = 0 then a else b) x;
      Traffic.Hist.record one x)
    edges;
  Traffic.Hist.merge ~into:a b;
  Alcotest.(check string) "merge = single recorder (render)"
    (Traffic.Hist.render one) (Traffic.Hist.render a)

(* ------------------------------------------------------------------ *)
(* Scenario format                                                     *)
(* ------------------------------------------------------------------ *)

let test_scenario_roundtrip () =
  List.iter
    (fun sc ->
      let s = Traffic.Scenario.to_string sc in
      match Traffic.Scenario.parse s with
      | Error e -> Alcotest.failf "%s: round-trip failed: %s" sc.Traffic.Scenario.sc_name e
      | Ok sc' ->
          Alcotest.(check string)
            (sc.Traffic.Scenario.sc_name ^ " survives JSON round-trip")
            s
            (Traffic.Scenario.to_string sc'))
    Traffic.Scenario.all;
  Alcotest.(check int) "seven shipped scenarios" 7 (List.length Traffic.Scenario.all);
  (* a non-static policy survives the round-trip; the field is emitted
     only then, so every pre-policy document parses as "static" *)
  let sc = { (List.hd Traffic.Scenario.all) with Traffic.Scenario.sc_policy = "doubling" } in
  (match Traffic.Scenario.parse (Traffic.Scenario.to_string sc) with
  | Ok sc' ->
      Alcotest.(check string) "policy survives round-trip" "doubling"
        sc'.Traffic.Scenario.sc_policy
  | Error e -> Alcotest.failf "policy round-trip failed: %s" e);
  (match
     Traffic.Scenario.parse
       (Traffic.Scenario.to_string { sc with Traffic.Scenario.sc_policy = "bogus" })
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown policy spelling accepted");
  List.iter
    (fun sc ->
      match Traffic.Scenario.validate sc with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: shipped scenario invalid: %s" sc.Traffic.Scenario.sc_name e)
    Traffic.Scenario.all

let test_scenario_malformed () =
  let expect_error what s =
    match Traffic.Scenario.parse s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s: expected Error, got Ok" what
  in
  expect_error "truncated JSON" "{ \"name\": \"x\"";
  expect_error "not an object" "[1, 2, 3]";
  expect_error "missing fields" "{ \"name\": \"x\", \"seed\": 1 }";
  (* structurally well-formed documents that fail validation *)
  let doctor f =
    let sc = List.hd Traffic.Scenario.all in
    Traffic.Scenario.to_string (f sc)
  in
  let open Traffic.Scenario in
  expect_error "clusters don't sum to n"
    (doctor (fun sc -> { sc with sc_clusters = [ 3; 3 ] }));
  expect_error "no phases" (doctor (fun sc -> { sc with sc_phases = [] }));
  expect_error "negative arrival rate"
    (doctor (fun sc ->
         {
           sc with
           sc_phases =
             [
               {
                 ph_name = "bad";
                 ph_dur = 1.0e6;
                 ph_arrival = Traffic.Arrival.Poisson { rate = -1.0 };
                 ph_mix = { mi_insert = 1; mi_read = 1; mi_take = 1 };
               };
             ];
         }));
  expect_error "rolling down_time >= period"
    (doctor (fun sc -> { sc with sc_faults = Rolling { period = 10.0; down_time = 10.0 } }));
  expect_error "partition wider than lambda"
    (doctor (fun sc ->
         {
           sc with
           sc_n = 8;
           sc_lambda = 2;
           sc_clusters = [ 4; 4 ];
           sc_faults = Partition { cluster = 0; from_t = 1.0; until_t = 2.0 };
         }));
  expect_error "empty mix"
    (doctor (fun sc ->
         {
           sc with
           sc_phases =
             [
               {
                 ph_name = "bad";
                 ph_dur = 1.0e6;
                 ph_arrival = Traffic.Arrival.Poisson { rate = 1.0e-4 };
                 ph_mix = { mi_insert = 0; mi_read = 0; mi_take = 0 };
               };
             ];
         }))

(* ------------------------------------------------------------------ *)
(* Replay determinism pins                                             *)
(* ------------------------------------------------------------------ *)

(* A small scenario keeps the 6-run sweep cheap (~300 ops/run) while
   still exercising faults, WAN clusters and both op directions. *)
let small =
  let open Traffic.Scenario in
  {
    sc_name = "test_small";
    sc_seed = 77;
    sc_clients = 50_000;
    sc_client_skew = 1.1;
    sc_classes = 8;
    sc_class_skew = 0.9;
    sc_n = 6;
    sc_lambda = 2;
    sc_clusters = [ 3; 3 ];
    sc_remote_mult = 2.0;
    sc_wan_latency_aware = false;
    sc_policy = "static";
    sc_deadline = Some 1.5e5;
    sc_faults = Storm { at = 8.0e5; down = 2; outage = 3.0e5; stagger = 5.0e4 };
    sc_phases =
      [
        {
          ph_name = "steady";
          ph_dur = 2.0e6;
          ph_arrival = Traffic.Arrival.Poisson { rate = 1.5e-4 };
          ph_mix = { mi_insert = 2; mi_read = 2; mi_take = 1 };
        };
      ];
  }

let digests o =
  ( (match o.Traffic.Driver.o_trace_digest with Some d -> d | None -> "-"),
    o.Traffic.Driver.o_hist_digest )

let test_replay_pins () =
  (match Traffic.Scenario.validate small with
  | Ok () -> ()
  | Error e -> Alcotest.failf "small scenario invalid: %s" e);
  let bare = Traffic.Driver.run ~tracing:true small in
  Alcotest.(check bool) "issues something" true (bare.Traffic.Driver.o_issued > 100);
  (* bare ≡ the 1-shard composition, trace and histogram *)
  let s1 = Traffic.Driver.run ~tracing:true ~shards:1 ~domains:1 small in
  Alcotest.(check (pair string string)) "bare = 1-shard" (digests bare) (digests s1);
  (* a fixed shard count is byte-identical at any domain count *)
  let sweep = List.map (fun d -> Traffic.Driver.run ~tracing:true ~shards:4 ~domains:d small) [ 1; 2; 4 ] in
  (match sweep with
  | d1 :: rest ->
      if printing then
        Format.printf "replay pin S=4: trace=%s hist=%s@." (fst (digests d1))
          (snd (digests d1));
      List.iteri
        (fun i dx ->
          Alcotest.(check (pair string string))
            (Printf.sprintf "S=4: D=1 = D=%d" (List.nth [ 2; 4 ] i))
            (digests d1) (digests dx);
          Alcotest.(check int) "same issue count" d1.Traffic.Driver.o_issued
            dx.Traffic.Driver.o_issued)
        rest
  | [] -> assert false);
  (* the driver's reruns are reproducible in-process (fresh RNGs, no
     global state left behind by the previous run) *)
  let again = Traffic.Driver.run ~tracing:true small in
  Alcotest.(check (pair string string)) "rerun reproduces" (digests bare) (digests again)

(* ------------------------------------------------------------------ *)
(* Self-similar arrivals                                               *)
(* ------------------------------------------------------------------ *)

(* The Pareto-dwell ON/OFF process: construction rejects a tail index
   with infinite mean dwell, the shipped web_selfsim scenario survives
   the JSON round-trip with its arrival intact, and its replay is
   digest-pinned (a pure function of the scenario, like the others). *)
let test_selfsim_pin () =
  Alcotest.check_raises "alpha <= 1 rejected"
    (Invalid_argument "Arrival.make: alpha <= 1 (infinite mean dwell)")
    (fun () ->
      ignore
        (Traffic.Arrival.make
           (Traffic.Arrival.Selfsim
              {
                rate_on = 1.0e-4;
                rate_off = 0.0;
                mean_on = 1.0e4;
                mean_off = 1.0e4;
                alpha = 1.0;
              })
           ~seed:1));
  let sc =
    match Traffic.Scenario.find "web_selfsim" with
    | Some sc -> sc
    | None -> Alcotest.fail "web_selfsim missing from the library"
  in
  (match Traffic.Scenario.parse (Traffic.Scenario.to_string sc) with
  | Error e -> Alcotest.failf "web_selfsim round-trip failed: %s" e
  | Ok sc' -> (
      match (List.hd sc'.Traffic.Scenario.sc_phases).ph_arrival with
      | Traffic.Arrival.Selfsim { alpha; _ } ->
          Alcotest.(check (float 0.0)) "alpha survives round-trip" 1.5 alpha
      | _ -> Alcotest.fail "web_selfsim arrival decoded to the wrong kind"));
  let o = Traffic.Driver.run ~tracing:true sc in
  if printing then
    Format.printf "web_selfsim pin: trace=%s hist=%s issued=%d@."
      (fst (digests o)) (snd (digests o)) o.Traffic.Driver.o_issued;
  Alcotest.(check bool) "issued thousands" true (o.Traffic.Driver.o_issued > 2000);
  Alcotest.(check (pair string string))
    "web_selfsim digest pin"
    ("0eb7593b940b3fa0ceaf15e258c39ae7", "7b7fc1298460b6bba3871a12852488fe")
    (digests o)

(* ------------------------------------------------------------------ *)
(* Flash crowd through the invariant checks                            *)
(* ------------------------------------------------------------------ *)

let test_flash_crowd_invariants () =
  let flash_crowd =
    match Traffic.Scenario.find "flash_crowd" with
    | Some sc -> sc
    | None -> Alcotest.fail "flash_crowd missing from the library"
  in
  let o, reports = Traffic.Driver.run_checked flash_crowd in
  Alcotest.(check int) "no invariant violations" 0 (List.length reports);
  (match reports with
  | [] -> ()
  | r :: _ ->
      Alcotest.failf "flash_crowd violates invariants: %s"
        (Format.asprintf "%a" Check.Invariants.pp_report r));
  (* the bursts actually pushed the system: thousands of ops issued,
     with rolling faults cycling machines through crash/recovery *)
  Alcotest.(check bool) "issued thousands" true (o.Traffic.Driver.o_issued > 5000);
  Alcotest.(check bool) "tail above median" true
    (Traffic.Hist.p999 o.Traffic.Driver.o_hist
    > 2.0 *. Traffic.Hist.p50 o.Traffic.Driver.o_hist);
  (* sharded flash crowd is clean too (every shard's checks) *)
  let _, sharded_reports =
    Traffic.Driver.run_checked ~shards:2 ~domains:2 flash_crowd
  in
  Alcotest.(check int) "sharded: no invariant violations" 0 (List.length sharded_reports)

let () =
  Alcotest.run "traffic"
    [
      ( "hist",
        [
          Alcotest.test_case "quantiles vs exact scan" `Quick test_hist_accuracy;
          Alcotest.test_case "pinned edges, zero bucket, merge" `Quick test_hist_pins;
        ] );
      ( "scenario",
        [
          Alcotest.test_case "JSON round-trip" `Quick test_scenario_roundtrip;
          Alcotest.test_case "malformed inputs" `Quick test_scenario_malformed;
        ] );
      ( "replay",
        [
          Alcotest.test_case "bare/sharded, D in {1,2,4}" `Quick test_replay_pins;
          Alcotest.test_case "web_selfsim digest pin" `Quick test_selfsim_pin;
        ] );
      ( "invariants",
        [
          Alcotest.test_case "flash crowd A1-A3 clean" `Quick test_flash_crowd_invariants;
        ] );
    ]
