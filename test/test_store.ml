(* Tests for the three storage structures, including the cross-store
   equivalence property: all stores implement the same abstract
   multiset-with-insertion-order semantics. *)

open Paso

let mkuid =
  let c = ref 0 in
  fun () ->
    incr c;
    Uid.make ~machine:0 ~serial:!c

let obj fields = Pobj.make ~uid:(mkuid ()) fields
let vi i = Value.Int i
let vs s = Value.Sym s

let kinds =
  [ ("hash", Storage.Hash); ("tree", Storage.Tree); ("linear", Storage.Linear);
    ("multi", Storage.Multi) ]

let for_all_kinds f = List.iter (fun (name, kind) -> f name (Store.create kind)) kinds

let test_insert_find () =
  for_all_kinds (fun name s ->
      let o = obj [ vs "k"; vi 1 ] in
      s.Storage.insert o;
      Alcotest.(check int) (name ^ " size") 1 (s.Storage.size ());
      match s.Storage.find (Template.headed "k" [ Template.Any ]) with
      | Some found -> Alcotest.(check bool) (name ^ " found") true (Pobj.equal found o)
      | None -> Alcotest.fail (name ^ ": not found"))

let test_find_miss () =
  for_all_kinds (fun name s ->
      s.Storage.insert (obj [ vs "k"; vi 1 ]);
      Alcotest.(check bool)
        (name ^ " miss")
        true
        (s.Storage.find (Template.headed "other" [ Template.Any ]) = None))

let test_oldest_first () =
  for_all_kinds (fun name s ->
      List.iter (fun i -> s.Storage.insert (obj [ vs "k"; vi i ])) [ 1; 2; 3 ];
      let tmpl = Template.headed "k" [ Template.Any ] in
      (match s.Storage.find tmpl with
      | Some o -> Alcotest.(check bool) (name ^ " find oldest") true (Pobj.field o 1 = vi 1)
      | None -> Alcotest.fail "miss");
      let taken = List.filter_map (fun _ -> s.Storage.remove_oldest tmpl) [ (); (); () ] in
      Alcotest.(check (list int))
        (name ^ " removal FIFO")
        [ 1; 2; 3 ]
        (List.map (fun o -> match Pobj.field o 1 with Value.Int i -> i | _ -> -1) taken);
      Alcotest.(check int) (name ^ " empty") 0 (s.Storage.size ()))

let test_remove_miss_keeps_state () =
  for_all_kinds (fun name s ->
      s.Storage.insert (obj [ vs "k"; vi 1 ]);
      Alcotest.(check bool)
        (name ^ " remove miss")
        true
        (s.Storage.remove_oldest (Template.headed "x" [ Template.Any ]) = None);
      Alcotest.(check int) (name ^ " untouched") 1 (s.Storage.size ()))

let test_to_list_insertion_order () =
  for_all_kinds (fun name s ->
      let objs = List.map (fun i -> obj [ vs "k"; vi i ]) [ 5; 3; 9; 1 ] in
      List.iter s.Storage.insert objs;
      Alcotest.(check (list int))
        (name ^ " to_list order")
        [ 5; 3; 9; 1 ]
        (List.map
           (fun o -> match Pobj.field o 1 with Value.Int i -> i | _ -> -1)
           (s.Storage.to_list ())))

let test_load_roundtrip () =
  List.iter
    (fun (name, kind) ->
      let s = Store.create kind in
      List.iter (fun i -> s.Storage.insert (obj [ vs "k"; vi i ])) [ 2; 7; 4 ];
      let s' = Store.load kind (s.Storage.to_list ()) in
      Alcotest.(check int) (name ^ " size preserved") 3 (s'.Storage.size ());
      Alcotest.(check (list int))
        (name ^ " order preserved")
        [ 2; 7; 4 ]
        (List.map
           (fun o -> match Pobj.field o 1 with Value.Int i -> i | _ -> -1)
           (s'.Storage.to_list ())))
    kinds

let test_bytes_grow () =
  for_all_kinds (fun name s ->
      let b0 = s.Storage.bytes () in
      s.Storage.insert (obj [ vs "k"; Value.Str (String.make 50 'x') ]);
      Alcotest.(check bool) (name ^ " bytes grow") true (s.Storage.bytes () > b0))

let test_tree_range_query () =
  let s = Store.create Storage.Tree in
  List.iter (fun i -> s.Storage.insert (obj [ vi i; vs "row" ])) [ 1; 4; 8; 16; 32 ];
  let tmpl = Template.make [ Template.Range (vi 5, vi 20); Template.Any ] in
  (match s.Storage.find tmpl with
  | Some o -> Alcotest.(check bool) "oldest in range" true (Pobj.field o 0 = vi 8)
  | None -> Alcotest.fail "range miss");
  (* Remove both in-range rows; next find must miss. *)
  ignore (s.Storage.remove_oldest tmpl);
  ignore (s.Storage.remove_oldest tmpl);
  Alcotest.(check bool) "range exhausted" true (s.Storage.find tmpl = None);
  Alcotest.(check int) "others untouched" 3 (s.Storage.size ())

let test_tree_duplicate_keys () =
  let s = Store.create Storage.Tree in
  List.iter (fun i -> s.Storage.insert (obj [ vi 7; vi i ])) [ 1; 2; 3 ];
  let tmpl = Template.make [ Template.Eq (vi 7); Template.Any ] in
  let taken = List.filter_map (fun _ -> s.Storage.remove_oldest tmpl) [ (); (); () ] in
  Alcotest.(check (list int)) "bucket FIFO" [ 1; 2; 3 ]
    (List.map (fun o -> match Pobj.field o 1 with Value.Int i -> i | _ -> -1) taken)

let test_hash_index_with_where () =
  let s = Store.create Storage.Hash in
  s.Storage.insert (obj [ vs "k"; vi 1 ]);
  (* All-Eq template + where clause: must go through the exact index
     and still honour the where predicate. *)
  let yes = Template.make ~where:("true", fun _ -> true) [ Template.Eq (vs "k"); Template.Eq (vi 1) ] in
  let no = Template.make ~where:("false", fun _ -> false) [ Template.Eq (vs "k"); Template.Eq (vi 1) ] in
  Alcotest.(check bool) "where true" true (s.Storage.find yes <> None);
  Alcotest.(check bool) "where false" true (s.Storage.find no = None)

(* Cross-store equivalence: random op sequences give identical results
   on all three stores. This is the determinism the replication
   protocol relies on. *)
let prop_store_equivalence =
  let open QCheck2 in
  let gen_op =
    Gen.(
      oneof
        [
          map (fun (h, v) -> `Insert (h mod 3, v)) (pair small_nat small_nat);
          map (fun h -> `Find (h mod 3)) small_nat;
          map (fun h -> `Remove (h mod 3)) small_nat;
        ])
  in
  Test.make ~name:"hash/tree/linear/multi agree on random op sequences" ~count:200
    Gen.(list_size (int_range 1 60) gen_op)
    (fun ops ->
      let heads = [| "a"; "b"; "c" |] in
      let run kind =
        let s = Store.create kind in
        let out = ref [] in
        let serial = ref 0 in
        List.iter
          (fun op ->
            match op with
            | `Insert (h, v) ->
                incr serial;
                s.Storage.insert
                  (Pobj.make
                     ~uid:(Uid.make ~machine:9 ~serial:!serial)
                     [ vs heads.(h); vi v ])
            | `Find h ->
                let r = s.Storage.find (Template.headed heads.(h) [ Template.Any ]) in
                out := Option.map Pobj.uid r :: !out
            | `Remove h ->
                let r = s.Storage.remove_oldest (Template.headed heads.(h) [ Template.Any ]) in
                out := Option.map Pobj.uid r :: !out)
          ops;
        (!out, List.map Pobj.uid (s.Storage.to_list ()))
      in
      let h = run Storage.Hash and t = run Storage.Tree in
      let l = run Storage.Linear and m = run Storage.Multi in
      h = t && t = l && l = m)

let test_multi_routing () =
  let s = Store.create Storage.Multi in
  List.iter (fun i -> s.Storage.insert (obj [ vi i; vs "row" ])) [ 3; 1; 7; 5 ];
  (* exact path *)
  Alcotest.(check bool) "exact hit" true
    (s.Storage.find (Template.make [ Template.Eq (vi 7); Template.Eq (vs "row") ]) <> None);
  (* ordered path *)
  (match s.Storage.find (Template.make [ Template.Range (vi 4, vi 6); Template.Any ]) with
  | Some o -> Alcotest.(check bool) "range hit" true (Pobj.field o 0 = vi 5)
  | None -> Alcotest.fail "range miss");
  (* scan path *)
  let even = Template.Pred ("even", function Value.Int i -> i mod 2 = 1 | _ -> false) in
  (match s.Storage.find (Template.make [ even; Template.Any ]) with
  | Some o -> Alcotest.(check bool) "scan oldest" true (Pobj.field o 0 = vi 3)
  | None -> Alcotest.fail "scan miss");
  (* removal maintains all indexes *)
  ignore (s.Storage.remove_oldest (Template.make [ Template.Eq (vi 3); Template.Any ]));
  Alcotest.(check bool) "exact index updated" true
    (s.Storage.find (Template.make [ Template.Eq (vi 3); Template.Eq (vs "row") ]) = None);
  Alcotest.(check int) "size" 3 (s.Storage.size ())

let test_avl_balance () =
  let tree = ref Avl.empty in
  for i = 1 to 500 do
    tree := Avl.add_item !tree (vi i) i (obj [ vi i ])
  done;
  Alcotest.(check bool) "balanced after ordered inserts" true (Avl.is_balanced !tree);
  Alcotest.(check bool) "logarithmic height" true (Avl.height !tree <= 12);
  for i = 1 to 400 do
    tree := Avl.remove_item !tree (vi i) i
  done;
  Alcotest.(check bool) "balanced after removals" true (Avl.is_balanced !tree)

let prop_tree_balanced_big =
  QCheck2.Test.make ~name:"tree handles 1000 ordered inserts" ~count:5 QCheck2.Gen.unit
    (fun () ->
      let s = Store.create Storage.Tree in
      for i = 1 to 1000 do
        s.Storage.insert (obj [ vi i; vs "x" ])
      done;
      s.Storage.size () = 1000
      && s.Storage.find (Template.make [ Template.Eq (vi 777); Template.Any ]) <> None)

let () =
  Alcotest.run "store"
    [
      ( "common",
        [
          Alcotest.test_case "insert/find" `Quick test_insert_find;
          Alcotest.test_case "find miss" `Quick test_find_miss;
          Alcotest.test_case "oldest-first discipline" `Quick test_oldest_first;
          Alcotest.test_case "remove miss keeps state" `Quick test_remove_miss_keeps_state;
          Alcotest.test_case "to_list insertion order" `Quick test_to_list_insertion_order;
          Alcotest.test_case "snapshot/load roundtrip" `Quick test_load_roundtrip;
          Alcotest.test_case "bytes grow" `Quick test_bytes_grow;
        ] );
      ( "tree",
        [
          Alcotest.test_case "range query" `Quick test_tree_range_query;
          Alcotest.test_case "duplicate keys FIFO" `Quick test_tree_duplicate_keys;
        ] );
      ("hash", [ Alcotest.test_case "index honours where" `Quick test_hash_index_with_where ]);
      ( "multi",
        [
          Alcotest.test_case "routes to all three indexes" `Quick test_multi_routing;
          Alcotest.test_case "AVL stays balanced" `Quick test_avl_balance;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_store_equivalence;
          QCheck_alcotest.to_alcotest prop_tree_balanced_big;
        ] );
    ]
