(* Tests for object classing and sc-list exhaustiveness (§4.1). *)

open Paso

let uid = Uid.make ~machine:0 ~serial:0
let obj fields = Pobj.make ~uid fields
let vi i = Value.Int i
let vs s = Value.Sym s

let strategies =
  [
    ("single", Obj_class.Single_class);
    ("arity", Obj_class.By_arity);
    ("head", Obj_class.By_head);
    ("signature", Obj_class.By_signature);
  ]

let test_classify_deterministic () =
  List.iter
    (fun (_, s) ->
      let a = Obj_class.class_of s (obj [ vs "t"; vi 1 ]) in
      let b = Obj_class.class_of s (obj [ vs "t"; vi 2 ]) in
      ignore (a, b))
    strategies;
  let s = Obj_class.By_head in
  Alcotest.(check string) "same head same class"
    (Obj_class.class_of s (obj [ vs "t"; vi 1 ]))
    (Obj_class.class_of s (obj [ vs "t"; vi 2 ]));
  Alcotest.(check bool) "different head different class" true
    (Obj_class.class_of s (obj [ vs "t"; vi 1 ])
    <> Obj_class.class_of s (obj [ vs "u"; vi 1 ]))

let test_head_arity_distinguishes () =
  let s = Obj_class.By_head in
  Alcotest.(check bool) "same head, different arity" true
    (Obj_class.class_of s (obj [ vs "t"; vi 1 ])
    <> Obj_class.class_of s (obj [ vs "t"; vi 1; vi 2 ]))

let test_signature_classes () =
  let s = Obj_class.By_signature in
  Alcotest.(check string) "signature class" "s/sym,int"
    (Obj_class.class_of s (obj [ vs "t"; vi 1 ]))

let test_sc_list_headed_singleton () =
  let s = Obj_class.By_head in
  let tmpl = Template.headed "t" [ Template.Any ] in
  let expected = Obj_class.class_of s (obj [ vs "t"; vi 1 ]) in
  Alcotest.(check (list string)) "singleton even with empty universe" [ expected ]
    (Obj_class.sc_list s ~universe:[] tmpl)

let test_sc_list_wildcard_uses_universe () =
  let s = Obj_class.By_head in
  let infos =
    List.map (fun o -> Obj_class.classify s o)
      [ obj [ vs "a"; vi 1 ]; obj [ vs "b"; vi 1 ]; obj [ vs "c"; vi 1; vi 2 ] ]
  in
  let tmpl = Template.make [ Template.Any; Template.Any ] in
  let cls = Obj_class.sc_list s ~universe:infos tmpl in
  Alcotest.(check int) "both arity-2 classes, not the arity-3 one" 2 (List.length cls)

let test_sc_list_head_range () =
  let s = Obj_class.By_head in
  let infos =
    List.map (fun o -> Obj_class.classify s o)
      [ obj [ vi 1; vs "x" ]; obj [ vi 5; vs "x" ]; obj [ vi 9; vs "x" ] ]
  in
  let tmpl = Template.make [ Template.Range (vi 2, vi 7); Template.Any ] in
  let cls = Obj_class.sc_list s ~universe:infos tmpl in
  Alcotest.(check int) "only the in-range head class" 1 (List.length cls)

let test_sc_list_signature_exact () =
  let s = Obj_class.By_signature in
  let tmpl = Template.make [ Template.Eq (vs "t"); Template.Type_is "int" ] in
  Alcotest.(check (list string)) "constructed without universe" [ "s/sym,int" ]
    (Obj_class.sc_list s ~universe:[] tmpl)

let test_sc_list_signature_partial () =
  let s = Obj_class.By_signature in
  let infos =
    List.map (fun o -> Obj_class.classify s o)
      [ obj [ vs "t"; vi 1 ]; obj [ vs "t"; Value.Str "x" ]; obj [ vi 0; vi 1 ] ]
  in
  let tmpl = Template.make [ Template.Any; Template.Type_is "int" ] in
  let cls = Obj_class.sc_list s ~universe:infos tmpl in
  Alcotest.(check (list string)) "filters second field type" [ "s/int,int"; "s/sym,int" ] cls

(* The §4.1 exhaustiveness requirement, property-tested: for every
   strategy, any object matching a criterion has its class in the
   criterion's sc-list (given the class is in the universe). *)
let gen_obj =
  QCheck2.Gen.(
    let field =
      oneof
        [
          map (fun i -> Value.Int i) (int_bound 20);
          map (fun i -> Value.Sym (Printf.sprintf "s%d" i)) (int_bound 3);
          map (fun b -> Value.Bool b) bool;
        ]
    in
    map (fun fs -> obj fs) (list_size (int_range 1 4) field))

let gen_template_for o =
  QCheck2.Gen.(
    let spec_for v =
      oneof
        [
          return (Template.Eq v);
          return Template.Any;
          return (Template.Type_is (Value.type_name v));
          (match v with
          | Value.Int i -> return (Template.Range (vi (i - 2), vi (i + 2)))
          | _ -> return Template.Any);
        ]
    in
    let rec specs = function [] -> return [] | v :: rest ->
      spec_for v >>= fun s -> map (fun ss -> s :: ss) (specs rest)
    in
    map Template.make (specs (Pobj.fields o)))

let prop_sc_list_exhaustive strategy_name strategy =
  QCheck2.Test.make
    ~name:(Printf.sprintf "sc-list exhaustive (%s)" strategy_name)
    ~count:500
    QCheck2.Gen.(gen_obj >>= fun o -> map (fun t -> (o, t)) (gen_template_for o))
    (fun (o, tmpl) ->
      (not (Template.matches tmpl o))
      ||
      let info = Obj_class.classify strategy o in
      let listed = Obj_class.sc_list strategy ~universe:[ info ] tmpl in
      List.mem info.Obj_class.name listed)

let () =
  Alcotest.run "obj_class"
    [
      ( "classify",
        [
          Alcotest.test_case "deterministic partition" `Quick test_classify_deterministic;
          Alcotest.test_case "arity distinguishes" `Quick test_head_arity_distinguishes;
          Alcotest.test_case "signature classes" `Quick test_signature_classes;
        ] );
      ( "sc_list",
        [
          Alcotest.test_case "headed singleton" `Quick test_sc_list_headed_singleton;
          Alcotest.test_case "wildcard uses universe" `Quick test_sc_list_wildcard_uses_universe;
          Alcotest.test_case "range prunes heads" `Quick test_sc_list_head_range;
          Alcotest.test_case "signature exact" `Quick test_sc_list_signature_exact;
          Alcotest.test_case "signature partial" `Quick test_sc_list_signature_partial;
        ] );
      ( "properties",
        List.map
          (fun (name, s) -> QCheck_alcotest.to_alcotest (prop_sc_list_exhaustive name s))
          strategies );
    ]
