(* The eight protocol findings of DESIGN.md §6, each pinned as a
   deterministic regression driven through the failpoint registry
   (Check.Failpoint): the exact crash timings that randomised testing
   needed thousands of schedules to hit are forced directly at the
   planted injection sites. *)

open Paso
module Failpoint = Check.Failpoint

let mk ?(n = 8) ?(lambda = 2) ?repair ?topology ?batch () =
  let fps = Failpoint.create () in
  let sys =
    System.create ~failpoints:fps
      {
        System.default_config with
        n;
        lambda;
        repair;
        batch;
        topology =
          (match topology with
          | Some t -> t
          | None -> System.default_config.System.topology);
      }
  in
  (sys, fps)

let tmpl_a = Template.headed "a" [ Template.Any ]

let insert_a ?(v = 0) sys ~machine =
  System.insert sys ~machine [ Value.Sym "a"; Value.Int v ] ~on_done:(fun () -> ())

(* The single class every test populates (its name depends on the
   classing strategy, so read it back from the registry). *)
let the_class sys =
  match System.known_classes sys with
  | [ info ] -> info.Obj_class.name
  | infos -> Alcotest.failf "expected one class, got %d" (List.length infos)

let check_clean sys what =
  match Check.Invariants.all sys with
  | [] -> ()
  | r :: _ -> Alcotest.failf "%s: %s" what (Format.asprintf "%a" Check.Invariants.pp_report r)

let recover_all sys ~n =
  List.iter
    (fun m -> if not (System.is_up sys m) then System.recover sys ~machine:m)
    (List.init n Fun.id);
  System.run sys

(* Finding 1: a member crashing in the middle of a gcast delivery must
   not wedge the group — the view change has to exclude it from the
   pending flush. *)
let test_crash_mid_gcast () =
  let sys, fps = mk () in
  insert_a sys ~machine:0;
  System.run sys;
  let crashed = ref None in
  Failpoint.arm fps ~site:"vsync.gcast.deliver" ~times:1 (fun info ->
      crashed := Some info.Failpoint.fp_node;
      System.crash sys ~machine:info.Failpoint.fp_node;
      Failpoint.Nothing);
  insert_a sys ~machine:0 ~v:1;
  System.run sys;
  Alcotest.(check bool) "a delivery was interrupted" true (!crashed <> None);
  recover_all sys ~n:8;
  check_clean sys "after crash mid-gcast"

(* Finding 2: after a crash and instant recovery, the restarted server
   must not serve local reads from its wiped store while its stale
   view still lists it as a member — the read has to go remote. *)
let test_stale_view_local_read () =
  let sys, _fps = mk () in
  insert_a sys ~machine:0;
  System.run sys;
  let m = List.hd (System.write_group sys ~cls:(the_class sys)) in
  System.crash sys ~machine:m;
  System.recover sys ~machine:m;
  let result = ref `Pending in
  System.read sys ~machine:m tmpl_a ~on_done:(fun r -> result := `Done r);
  System.run sys;
  (match !result with
  | `Done (Some o) ->
      Alcotest.(check bool) "the surviving object" true (Template.matches tmpl_a o)
  | `Done None -> Alcotest.fail "read from the restarted member failed spuriously"
  | `Pending -> Alcotest.fail "read from the restarted member never returned");
  check_clean sys "after stale-view read"

(* Finding 3: a continuation captured by a local read must die with
   its machine. The op stays outstanding forever — which §2 permits —
   rather than returning stale data after the recovery. *)
let test_orphaned_continuation () =
  let sys, fps = mk () in
  insert_a sys ~machine:0;
  System.run sys;
  let m = List.hd (System.write_group sys ~cls:(the_class sys)) in
  Failpoint.arm fps ~site:"paso.op.issued" ~times:1 (fun info ->
      System.crash sys ~machine:info.Failpoint.fp_node;
      Failpoint.Nothing);
  let fired = ref false in
  System.read sys ~machine:m tmpl_a ~on_done:(fun _ -> fired := true);
  System.run sys;
  recover_all sys ~n:8;
  Alcotest.(check bool) "the orphaned continuation never fires" false !fired;
  let h = System.history sys in
  Alcotest.(check int) "exactly one op outstanding" (History.op_count h - 1)
    (History.completed_ops h);
  check_clean sys "after orphaned continuation"

(* Finding 4: when the last member dies right after sending a join
   snapshot, the class data lives on in the in-flight transfer — no
   loss may be recorded, and the data must be readable afterwards. *)
let test_inflight_transfer_no_loss () =
  let sys, fps = mk ~n:4 ~lambda:1 ~repair:Repair.Lrf () in
  insert_a sys ~machine:0;
  System.run sys;
  let cls = the_class sys in
  let support = System.basic_support sys ~cls in
  Failpoint.arm fps ~site:"vsync.join.transfer" ~times:1 (fun info ->
      (* the donor dies with the snapshot already on the wire *)
      System.crash sys ~machine:info.Failpoint.fp_node;
      Failpoint.Nothing);
  System.crash sys ~machine:(List.hd support);
  System.run sys;
  Alcotest.(check int) "no class loss recorded" 0
    (Sim.Stats.count (System.stats sys) "faults.class_losses");
  recover_all sys ~n:4;
  let result = ref None in
  System.read sys ~machine:0 tmpl_a ~on_done:(fun r -> result := r);
  System.run sys;
  Alcotest.(check bool) "the data survived the donor's death" true (!result <> None);
  check_clean sys "after in-flight transfer"

(* Finding 5: the semantics checker must not treat a timestamp tie as
   proof of visibility. A read issued at the exact instant the insert
   finished replicating may legally fail. *)
let test_tie_timestamp_not_visible () =
  let h = History.create () in
  let o = Pobj.make ~uid:(Uid.make ~machine:0 ~serial:0) [ Value.Sym "a"; Value.Int 1 ] in
  let ins = History.begin_op h ~machine:0 ~kind:History.Insert ~obj:o ~now:0.0 () in
  History.note_inserted h o ~cls:"a" ~now:0.0;
  History.note_first_store h (Pobj.uid o) ~now:50.0;
  History.note_all_stored h (Pobj.uid o) ~now:100.0;
  History.end_op h ins ~now:100.0 ~result:None;
  let r = History.begin_op h ~machine:1 ~kind:History.Read ~template:tmpl_a ~now:100.0 () in
  History.end_op h r ~now:150.0 ~result:None;
  match Semantics.check h with
  | [] -> ()
  | v :: _ ->
      Alcotest.failf "tie wrongly treated as visibility: %s"
        (Format.asprintf "%a" Semantics.pp_violation v)

(* Finding 6: a class loss kills only objects already stored. An
   insert whose gcast is still in flight when the last member dies
   must not be marked lost — it was never replicated, so the checker
   would otherwise wrongly bracket its lifetime and flag later
   (legal) outcomes. *)
let test_inflight_insert_survives_loss () =
  let sys, fps = mk ~n:2 ~lambda:0 () in
  insert_a sys ~machine:0 ~v:1;
  System.run sys;
  let x = List.hd (System.write_group sys ~cls:(the_class sys)) in
  let y = 1 - x in
  (* the sole member dies at the instant it is about to process the
     second insert's store — the loss fires with that insert in flight *)
  Failpoint.arm fps ~site:"vsync.gcast.deliver" ~times:1 (fun info ->
      System.crash sys ~machine:info.Failpoint.fp_node;
      Failpoint.Nothing);
  insert_a sys ~machine:y ~v:2;
  System.run sys;
  Alcotest.(check int) "the loss was recorded" 1
    (Sim.Stats.count (System.stats sys) "faults.class_losses");
  recover_all sys ~n:2;
  let life v =
    match
      List.find_opt
        (fun (l : History.lifecycle) -> Pobj.field l.the_obj 1 = Value.Int v)
        (History.lifecycles (System.history sys))
    with
    | Some l -> l
    | None -> Alcotest.failf "no lifecycle for object %d" v
  in
  Alcotest.(check bool) "the stored object died in the loss" true
    ((life 1).History.lost_at <> None);
  Alcotest.(check bool) "the in-flight object was not marked lost" true
    ((life 2).History.lost_at = None);
  (* the dropped copy was never stored anywhere, so a read must
     complete (here: legally fail) without tripping the checker *)
  let result = ref `Pending in
  System.read sys ~machine:y
    (Template.headed "a" [ Template.Eq (Value.Int 2) ])
    ~on_done:(fun r -> result := `Done r);
  System.run sys;
  Alcotest.(check bool) "the read completes" true (!result <> `Pending);
  check_clean sys "after class loss with in-flight insert"

(* Finding 7 (WAN): a read whose restricted same-cluster read group
   crashes mid-gcast in its entirety must retry against the surviving
   replicas instead of reporting a spurious fail. *)
let test_wan_zero_responder_retry () =
  let clusters = [| 0; 1; 0; 1 |] in
  let topology =
    System.Wan { clusters; remote = Net.Cost_model.v ~alpha:5000.0 ~beta:4.0 }
  in
  (* find a placement whose write group spans both clusters, so some
     reader's restricted read group is a single machine *)
  let pick seed =
    let fps = Failpoint.create () in
    let sys =
      System.create ~failpoints:fps
        { System.default_config with n = 4; lambda = 1; topology; seed }
    in
    insert_a sys ~machine:0;
    System.run sys;
    let wg = System.write_group sys ~cls:(the_class sys) in
    let spans = List.exists (fun m -> clusters.(m) = 0) wg
                && List.exists (fun m -> clusters.(m) = 1) wg in
    if spans then Some (sys, fps, wg) else None
  in
  let rec find seed =
    if seed > 50 then Alcotest.fail "no cluster-spanning placement in 50 seeds"
    else match pick seed with Some r -> r | None -> find (seed + 1)
  in
  let sys, fps, wg = find 0 in
  let reader =
    match List.filter (fun m -> not (List.mem m wg)) [ 0; 1; 2; 3 ] with
    | r :: _ -> r
    | [] -> Alcotest.fail "no reader outside the write group"
  in
  Failpoint.arm fps ~site:"vsync.gcast.deliver" ~times:1 (fun info ->
      (* the whole restricted read group — one machine — dies mid-read *)
      System.crash sys ~machine:info.Failpoint.fp_node;
      Failpoint.Nothing);
  let result = ref `Pending in
  System.read sys ~machine:reader tmpl_a ~on_done:(fun r -> result := `Done r);
  System.run sys;
  (match !result with
  | `Done (Some _) -> ()
  | `Done None -> Alcotest.fail "spurious fail: survivors held the object"
  | `Pending -> Alcotest.fail "the read never returned");
  Alcotest.(check bool) "the read retried" true
    (Sim.Stats.count (System.stats sys) "paso.read_retries" >= 1);
  recover_all sys ~n:4;
  check_clean sys "after zero-responder retry"

(* Finding 8: when the joiner receiving the last copy of a class dies
   together with the donor, the loss must be recorded — the in-flight
   snapshot to a dead joiner saves nothing. *)
let test_dying_joiner_is_a_loss () =
  let sys, fps = mk ~n:4 ~lambda:1 ~repair:Repair.Lrf () in
  insert_a sys ~machine:0;
  System.run sys;
  let cls = the_class sys in
  let support = System.basic_support sys ~cls in
  Failpoint.arm fps ~site:"vsync.join.transfer" ~times:1 (fun info ->
      (* donor and joiner both die: the snapshot on the wire was the
         state's last copy and its recipient is gone *)
      System.crash sys ~machine:info.Failpoint.fp_node;
      System.crash sys ~machine:info.Failpoint.fp_aux;
      Failpoint.Nothing);
  System.crash sys ~machine:(List.hd support);
  System.run sys;
  Alcotest.(check int) "exactly one class loss" 1
    (Sim.Stats.count (System.stats sys) "faults.class_losses");
  recover_all sys ~n:4;
  let l =
    match History.lifecycles (System.history sys) with
    | [ l ] -> l
    | ls -> Alcotest.failf "expected one lifecycle, got %d" (List.length ls)
  in
  Alcotest.(check bool) "the object is recorded lost" true (l.History.lost_at <> None);
  (* the cascade crashed three machines with λ = 1 — far outside the
     fault model — so the §4.1 support-size condition is forfeit; the
     structural invariants must still hold *)
  (match
     Check.Invariants.replica_consistency sys
     @ Check.Invariants.semantics sys
     @ Check.Invariants.quiescence sys
   with
  | [] -> ()
  | r :: _ ->
      Alcotest.failf "after dying joiner: %s"
        (Format.asprintf "%a" Check.Invariants.pp_report r))

(* Finding 9 (batching): the issuer crashing at the instant its held
   batch flushes must orphan the whole batch — none of its operations
   may deliver or complete, and the group must not wedge. The batch is
   atomic with respect to the crash: no prefix of it leaks. *)
let test_crash_mid_batch () =
  let sys, fps =
    mk ~batch:(Net.Batch.cfg ~max_ops:16 ~max_bytes:4096 ~hold:400.0 ()) ()
  in
  insert_a sys ~machine:0;
  System.run sys;
  Failpoint.arm fps ~site:"vsync.batch.flush" ~times:1 (fun info ->
      System.crash sys ~machine:info.Failpoint.fp_node;
      Failpoint.Nothing);
  (* two inserts ride the same held batch; the failpoint kills their
     issuer when the hold window expires *)
  insert_a sys ~machine:0 ~v:1;
  insert_a sys ~machine:0 ~v:2;
  System.run sys;
  let h = System.history sys in
  Alcotest.(check int) "both batched inserts stay outstanding"
    (History.op_count h - 2) (History.completed_ops h);
  (* neither object of the orphaned batch was stored anywhere *)
  let gone v =
    let result = ref `Pending in
    System.read sys ~machine:1
      (Template.headed "a" [ Template.Eq (Value.Int v) ])
      ~on_done:(fun r -> result := `Done r);
    System.run sys;
    match !result with
    | `Done r -> Alcotest.(check bool) (Printf.sprintf "object %d not stored" v) true (r = None)
    | `Pending -> Alcotest.failf "read for object %d never returned" v
  in
  gone 1;
  gone 2;
  (* the pre-batch object is untouched and the group still works *)
  let result = ref None in
  System.read sys ~machine:1 tmpl_a ~on_done:(fun r -> result := r);
  System.run sys;
  Alcotest.(check bool) "the pre-batch object survives" true (!result <> None);
  recover_all sys ~n:8;
  check_clean sys "after crash mid-batch"

let () =
  Alcotest.run "failpoints"
    [
      ( "design.md section 6 regressions",
        [
          Alcotest.test_case "1: crash mid-gcast does not wedge the group" `Quick
            test_crash_mid_gcast;
          Alcotest.test_case "2: stale-view local read goes remote" `Quick
            test_stale_view_local_read;
          Alcotest.test_case "3: continuations die with their machine" `Quick
            test_orphaned_continuation;
          Alcotest.test_case "4: in-flight state transfer is not a loss" `Quick
            test_inflight_transfer_no_loss;
          Alcotest.test_case "5: timestamp ties prove nothing" `Quick
            test_tie_timestamp_not_visible;
          Alcotest.test_case "6: in-flight insert survives a class loss" `Quick
            test_inflight_insert_survives_loss;
          Alcotest.test_case "7: WAN zero-responder read retries" `Quick
            test_wan_zero_responder_retry;
          Alcotest.test_case "8: a dying joiner is a recorded loss" `Quick
            test_dying_joiner_is_a_loss;
          Alcotest.test_case "9: a crash mid-batch orphans the whole batch" `Quick
            test_crash_mid_batch;
        ] );
    ]
