(* Tests for the virtual-synchrony layer: a toy replicated log of
   strings, replicated with gcast. *)

let check_float = Alcotest.(check (float 1e-9))

type harness = {
  eng : Sim.Engine.t;
  stats : Sim.Stats.t;
  bus : Net.Fabric.t;
  logs : string list array; (* per node, newest first *)
  vs : (string, string, string list) Vsync.t;
  views_seen : (int * Vsync.View.t) list ref;
  evicted : (int * string) list ref;
  lost : string list ref;
}

let alpha = 100.0
let beta = 1.0

(* Each delivery appends the message to the node's log and answers with
   "<node>:<msg>"; processing takes [work_per_msg]. *)
let make ?batch ?(n = 5) ?(work_per_msg = 0.0) () =
  let eng = Sim.Engine.create () in
  let stats = Sim.Stats.create () in
  let trace = Sim.Trace.create () in
  let bus = Net.Fabric.shared_bus eng (Net.Cost_model.v ~alpha ~beta) stats in
  let logs = Array.make n [] in
  let views_seen = ref [] in
  let evicted = ref [] in
  let lost = ref [] in
  let callbacks =
    {
      Vsync.deliver =
        (fun ~node ~group:_ ~from:_ msg ->
          logs.(node) <- msg :: logs.(node);
          (Some (Printf.sprintf "%d:%s" node msg), work_per_msg));
      resp_size = (function None -> 0 | Some s -> String.length s);
      state_of = (fun ~node ~group:_ -> (List.rev logs.(node), 8 * List.length logs.(node)));
      state_delta = (fun ~node:_ ~group:_ ~joiner:_ -> None);
      install_state =
        (fun ~node ~group:_ state -> logs.(node) <- List.rev state);
      on_view = (fun ~node v -> views_seen := (node, v) :: !views_seen);
      on_evict =
        (fun ~node ~group ->
          logs.(node) <- [];
          evicted := (node, group) :: !evicted);
      on_group_lost = (fun ~group -> lost := group :: !lost);
    }
  in
  let vs = Vsync.make ?batch ~engine:eng ~fabric:bus ~stats ~trace ~n callbacks in
  { eng; stats; bus; logs; vs; views_seen; evicted; lost }

let join_all h group nodes =
  List.iter (fun node -> Vsync.join h.vs ~group ~node ~on_done:(fun () -> ())) nodes;
  Sim.Engine.run h.eng

let log h node = List.rev h.logs.(node)

(* --- membership ----------------------------------------------------------- *)

let test_join_membership () =
  let h = make () in
  join_all h "g" [ 2; 0; 4 ];
  Alcotest.(check (list int)) "members sorted" [ 0; 2; 4 ] (Vsync.members h.vs ~group:"g");
  Alcotest.(check bool) "is_member" true (Vsync.is_member h.vs ~group:"g" ~node:4);
  Alcotest.(check bool) "non-member" false (Vsync.is_member h.vs ~group:"g" ~node:1);
  Alcotest.(check (list string)) "groups_of" [ "g" ] (Vsync.groups_of h.vs ~node:0)

let test_join_idempotent () =
  let h = make () in
  join_all h "g" [ 1; 1; 1 ];
  Alcotest.(check (list int)) "single membership" [ 1 ] (Vsync.members h.vs ~group:"g")

let test_leave () =
  let h = make () in
  join_all h "g" [ 0; 1 ];
  Vsync.leave h.vs ~group:"g" ~node:0 ~on_done:(fun () -> ());
  Sim.Engine.run h.eng;
  Alcotest.(check (list int)) "left" [ 1 ] (Vsync.members h.vs ~group:"g");
  Alcotest.(check (list (pair int string))) "evict callback" [ (0, "g") ] !(h.evicted)

let test_view_ids_monotonic () =
  let h = make () in
  join_all h "g" [ 0; 1; 2 ];
  let v = Vsync.view h.vs ~group:"g" in
  Alcotest.(check int) "three view changes" 3 v.Vsync.View.view_id;
  Alcotest.(check (option int)) "leader is min" (Some 0) (Vsync.View.leader v)

(* --- gcast ----------------------------------------------------------------- *)

let test_gcast_delivers_to_all () =
  let h = make () in
  join_all h "g" [ 0; 1; 2 ];
  let resp = ref None in
  Vsync.gcast h.vs ~group:"g" ~from:3 ~msg_size:10
    ~on_done:(fun ~resp:r ~work:_ ~responders ->
      resp := r;
      Alcotest.(check int) "three responders" 3 responders)
    "m1";
  Sim.Engine.run h.eng;
  List.iter
    (fun node -> Alcotest.(check (list string)) "log" [ "m1" ] (log h node))
    [ 0; 1; 2 ];
  Alcotest.(check bool) "got a response" true (!resp <> None)

let test_gcast_total_order () =
  let h = make () in
  join_all h "g" [ 0; 1; 2 ];
  (* Concurrent gcasts from different issuers: all replicas must apply
     them in the same order. *)
  for i = 1 to 5 do
    Vsync.gcast h.vs ~group:"g" ~from:(i mod 5) ~msg_size:4
      ~on_done:(fun ~resp:_ ~work:_ ~responders:_ -> ())
      (Printf.sprintf "m%d" i)
  done;
  Sim.Engine.run h.eng;
  let l0 = log h 0 in
  Alcotest.(check int) "all delivered" 5 (List.length l0);
  Alcotest.(check (list string)) "node1 same order" l0 (log h 1);
  Alcotest.(check (list string)) "node2 same order" l0 (log h 2)

let test_gcast_cost_matches_formula () =
  let h = make () in
  join_all h "g" [ 0; 1; 2; 3 ];
  let before = Net.Fabric.total_cost h.bus in
  let msg = "0123456789" (* 10 bytes *) in
  let resp_len = ref 0 in
  Vsync.gcast h.vs ~group:"g" ~from:4 ~msg_size:(String.length msg)
    ~on_done:(fun ~resp ~work:_ ~responders:_ ->
      resp_len := String.length (Option.get resp))
    msg;
  Sim.Engine.run h.eng;
  let measured = Net.Fabric.total_cost h.bus -. before in
  let expect =
    Net.Cost_model.gcast_cost
      (Net.Cost_model.v ~alpha ~beta)
      ~group_size:4 ~msg_size:(String.length msg) ~resp_size:!resp_len
  in
  check_float "gcast cost = α(2g+1) + β(mg+r)" expect measured

let test_gcast_empty_group_fails () =
  let h = make () in
  let result = ref (Some "sentinel") in
  Vsync.gcast h.vs ~group:"empty" ~from:0 ~msg_size:1
    ~on_done:(fun ~resp ~work:_ ~responders ->
      result := resp;
      Alcotest.(check int) "no responders" 0 responders)
    "m";
  Sim.Engine.run h.eng;
  Alcotest.(check bool) "fail response" true (!result = None)

let test_gcast_restrict () =
  let h = make () in
  join_all h "g" [ 0; 1; 2; 3 ];
  Vsync.gcast h.vs ~group:"g"
    ~restrict:(fun members -> List.filter (fun m -> m < 2) members)
    ~from:4 ~msg_size:1
    ~on_done:(fun ~resp:_ ~work:_ ~responders ->
      Alcotest.(check int) "restricted responders" 2 responders)
    "m";
  Sim.Engine.run h.eng;
  Alcotest.(check (list string)) "member 0 got it" [ "m" ] (log h 0);
  Alcotest.(check (list string)) "member 3 skipped" [] (log h 3)

let test_gcast_work_accounting () =
  let h = make ~work_per_msg:7.0 () in
  join_all h "g" [ 0; 1; 2 ];
  let total_work = ref 0.0 in
  Vsync.gcast h.vs ~group:"g" ~from:3 ~msg_size:1
    ~on_done:(fun ~resp:_ ~work ~responders:_ -> total_work := work)
    "m";
  Sim.Engine.run h.eng;
  check_float "work = 3 members x 7" 21.0 !total_work;
  check_float "stats work.total" 21.0 (Sim.Stats.total h.stats "work.total")

(* --- state transfer -------------------------------------------------------- *)

let test_join_state_transfer () =
  let h = make () in
  join_all h "g" [ 0 ];
  Vsync.gcast h.vs ~group:"g" ~from:1 ~msg_size:1
    ~on_done:(fun ~resp:_ ~work:_ ~responders:_ -> ())
    "a";
  Sim.Engine.run h.eng;
  (* Node 2 joins after "a" was replicated: it must receive it. *)
  join_all h "g" [ 2 ];
  Alcotest.(check (list string)) "snapshot installed" [ "a" ] (log h 2);
  (* And it participates in subsequent gcasts. *)
  Vsync.gcast h.vs ~group:"g" ~from:1 ~msg_size:1
    ~on_done:(fun ~resp:_ ~work:_ ~responders ->
      Alcotest.(check int) "both members" 2 responders)
    "b";
  Sim.Engine.run h.eng;
  Alcotest.(check (list string)) "joiner up to date" [ "a"; "b" ] (log h 2)

let test_join_serialised_with_gcasts () =
  let h = make () in
  join_all h "g" [ 0 ];
  (* Queue: gcast "a", join 1, gcast "b" — node 1's log must contain
     exactly a then b (a via snapshot, b via delivery). *)
  Vsync.gcast h.vs ~group:"g" ~from:2 ~msg_size:1
    ~on_done:(fun ~resp:_ ~work:_ ~responders:_ -> ())
    "a";
  Vsync.join h.vs ~group:"g" ~node:1 ~on_done:(fun () -> ());
  Vsync.gcast h.vs ~group:"g" ~from:2 ~msg_size:1
    ~on_done:(fun ~resp:_ ~work:_ ~responders:_ -> ())
    "b";
  Sim.Engine.run h.eng;
  Alcotest.(check (list string)) "consistent at joiner" [ "a"; "b" ] (log h 1);
  Alcotest.(check (list string)) "consistent at donor" [ "a"; "b" ] (log h 0)

(* --- crashes ---------------------------------------------------------------- *)

let test_crash_removes_from_views () =
  let h = make () in
  join_all h "g" [ 0; 1; 2 ];
  Vsync.crash h.vs ~node:1;
  Sim.Engine.run h.eng;
  Alcotest.(check (list int)) "crashed removed" [ 0; 2 ] (Vsync.members h.vs ~group:"g");
  Alcotest.(check bool) "marked down" false (Vsync.is_up h.vs 1)

let test_crash_during_gcast_completes () =
  let h = make ~work_per_msg:50.0 () in
  join_all h "g" [ 0; 1; 2 ];
  let done_ = ref false in
  Vsync.gcast h.vs ~group:"g" ~from:3 ~msg_size:1000
    ~on_done:(fun ~resp:_ ~work:_ ~responders:_ -> done_ := true)
    "m";
  (* Crash a member while copies are still on the bus. *)
  ignore (Sim.Engine.schedule h.eng ~delay:1.0 (fun () -> Vsync.crash h.vs ~node:2));
  Sim.Engine.run h.eng;
  Alcotest.(check bool) "gcast still completes" true !done_;
  Alcotest.(check (list int)) "views updated" [ 0; 1 ] (Vsync.members h.vs ~group:"g")

let test_crashed_issuer_gets_no_callback () =
  let h = make () in
  join_all h "g" [ 0; 1 ];
  let fired = ref false in
  Vsync.gcast h.vs ~group:"g" ~from:3 ~msg_size:1000
    ~on_done:(fun ~resp:_ ~work:_ ~responders:_ -> fired := true)
    "m";
  ignore (Sim.Engine.schedule h.eng ~delay:1.0 (fun () -> Vsync.crash h.vs ~node:3));
  Sim.Engine.run h.eng;
  Alcotest.(check bool) "orphaned" false !fired;
  (* The replicas still applied the message (reliability). *)
  Alcotest.(check (list string)) "applied anyway" [ "m" ] (log h 0)

let test_recover_and_rejoin () =
  let h = make () in
  join_all h "g" [ 0; 1 ];
  Vsync.gcast h.vs ~group:"g" ~from:2 ~msg_size:1
    ~on_done:(fun ~resp:_ ~work:_ ~responders:_ -> ())
    "a";
  Sim.Engine.run h.eng;
  Vsync.crash h.vs ~node:1;
  Sim.Engine.run h.eng;
  Vsync.recover h.vs ~node:1;
  h.logs.(1) <- [];
  (* crash erased it; simulate fresh memory *)
  join_all h "g" [ 1 ];
  Alcotest.(check (list string)) "state transferred on rejoin" [ "a" ] (log h 1);
  Alcotest.(check (list int)) "member again" [ 0; 1 ] (Vsync.members h.vs ~group:"g")

let test_crash_of_joiner_aborts_transfer () =
  let h = make () in
  join_all h "g" [ 0 ];
  Vsync.gcast h.vs ~group:"g" ~from:2 ~msg_size:1
    ~on_done:(fun ~resp:_ ~work:_ ~responders:_ -> ())
    "a";
  Sim.Engine.run h.eng;
  Vsync.join h.vs ~group:"g" ~node:1 ~on_done:(fun () -> ());
  (* Joiner crashes while its snapshot is in flight. *)
  ignore (Sim.Engine.schedule h.eng ~delay:0.5 (fun () -> Vsync.crash h.vs ~node:1));
  Sim.Engine.run h.eng;
  Alcotest.(check (list int)) "join aborted" [ 0 ] (Vsync.members h.vs ~group:"g");
  (* The group must not be wedged: later operations proceed. *)
  Vsync.gcast h.vs ~group:"g" ~from:2 ~msg_size:1
    ~on_done:(fun ~resp:_ ~work:_ ~responders ->
      Alcotest.(check int) "group alive" 1 responders)
    "b";
  Sim.Engine.run h.eng;
  Alcotest.(check (list string)) "donor log" [ "a"; "b" ] (log h 0)

(* Regression: a gcast issued after a crash but before the crash's view
   change is processed must not wait for the dead member's ack (the
   stale-view wedge). *)
let test_gcast_after_crash_before_view_change () =
  let h = make ~work_per_msg:10.0 () in
  join_all h "g" [ 0; 1; 2 ];
  (* Occupy the group with a long gcast so the crash's view change is
     forced to queue. *)
  Vsync.gcast h.vs ~group:"g" ~from:3 ~msg_size:500
    ~on_done:(fun ~resp:_ ~work:_ ~responders:_ -> ())
    "long";
  let second_done = ref (-1) in
  ignore
    (Sim.Engine.schedule h.eng ~delay:1.0 (fun () ->
         Vsync.crash h.vs ~node:2;
         (* Issued while node 2 is dead but still in the view. *)
         Vsync.gcast h.vs ~group:"g" ~from:3 ~msg_size:1
           ~on_done:(fun ~resp:_ ~work:_ ~responders -> second_done := responders)
           "after-crash"));
  Sim.Engine.run h.eng;
  Alcotest.(check int) "second gcast completes with live members only" 2 !second_done;
  Alcotest.(check (list string)) "survivors got both" [ "long"; "after-crash" ] (log h 0)

let test_eager_response_beats_flush () =
  (* With heavy per-member processing, the eager response arrives while
     slower members are still working; the standard response waits for
     everyone. Same number of messages either way. *)
  let run ~eager =
    let h = make ~work_per_msg:5000.0 () in
    join_all h "g" [ 0; 1; 2; 3 ];
    let t_resp = ref 0.0 in
    let msgs0 = Net.Fabric.message_count h.bus in
    Vsync.gcast h.vs ~eager ~group:"g" ~from:4 ~msg_size:10
      ~on_done:(fun ~resp:_ ~work:_ ~responders:_ -> t_resp := Sim.Engine.now h.eng)
      "m";
    Sim.Engine.run h.eng;
    (!t_resp, Net.Fabric.message_count h.bus - msgs0)
  in
  let t_std, m_std = run ~eager:false in
  let t_eager, m_eager = run ~eager:true in
  Alcotest.(check int) "same message count" m_std m_eager;
  Alcotest.(check bool)
    (Printf.sprintf "eager faster (%.0f < %.0f)" t_eager t_std)
    true (t_eager < t_std)

let test_eager_fail_waits_for_all () =
  (* If nobody has a response, the issuer still gets exactly one fail,
     after the flush. *)
  let h = make () in
  (* deliver returns Some always in this harness; use restrict to an
     empty-ish subset? Instead check single completion on success. *)
  join_all h "g" [ 0; 1; 2 ];
  let completions = ref 0 in
  Vsync.gcast h.vs ~eager:true ~group:"g" ~from:3 ~msg_size:1
    ~on_done:(fun ~resp:_ ~work:_ ~responders:_ -> incr completions)
    "m";
  Sim.Engine.run h.eng;
  Alcotest.(check int) "exactly one completion" 1 !completions

let test_group_loss_detected () =
  let h = make () in
  join_all h "g" [ 0; 1 ];
  Vsync.gcast h.vs ~group:"g" ~from:2 ~msg_size:1
    ~on_done:(fun ~resp:_ ~work:_ ~responders:_ -> ())
    "a";
  Sim.Engine.run h.eng;
  Vsync.crash h.vs ~node:0;
  Alcotest.(check (list string)) "no loss while a member survives" [] !(h.lost);
  Vsync.crash h.vs ~node:1;
  Sim.Engine.run h.eng;
  Alcotest.(check (list string)) "loss on last member crash" [ "g" ] !(h.lost)

let test_no_loss_with_transfer_in_flight () =
  let h = make () in
  join_all h "g" [ 0 ];
  Vsync.gcast h.vs ~group:"g" ~from:2 ~msg_size:1
    ~on_done:(fun ~resp:_ ~work:_ ~responders:_ -> ())
    "a";
  Sim.Engine.run h.eng;
  (* Start a join; crash the lone donor while the snapshot travels. *)
  Vsync.join h.vs ~group:"g" ~node:1 ~on_done:(fun () -> ());
  ignore (Sim.Engine.schedule h.eng ~delay:0.5 (fun () -> Vsync.crash h.vs ~node:0));
  Sim.Engine.run h.eng;
  Alcotest.(check (list string)) "snapshot carries the state" [] !(h.lost);
  Alcotest.(check (list string)) "joiner holds it" [ "a" ] (log h 1);
  Alcotest.(check (list int)) "joiner is the group" [ 1 ] (Vsync.members h.vs ~group:"g")

(* --- exec_local -------------------------------------------------------------- *)

let test_exec_local_serial_processor () =
  let h = make () in
  let t1 = ref 0.0 and t2 = ref 0.0 in
  Vsync.exec_local h.vs ~node:0 ~work:10.0 (fun () -> t1 := Sim.Engine.now h.eng);
  Vsync.exec_local h.vs ~node:0 ~work:5.0 (fun () -> t2 := Sim.Engine.now h.eng);
  Sim.Engine.run h.eng;
  check_float "first done at 10" 10.0 !t1;
  check_float "second queued behind" 15.0 !t2;
  check_float "work accounted" 15.0 (Sim.Stats.total h.stats "work.total")

let test_exec_local_parallel_nodes () =
  let h = make () in
  let t1 = ref 0.0 and t2 = ref 0.0 in
  Vsync.exec_local h.vs ~node:0 ~work:10.0 (fun () -> t1 := Sim.Engine.now h.eng);
  Vsync.exec_local h.vs ~node:1 ~work:10.0 (fun () -> t2 := Sim.Engine.now h.eng);
  Sim.Engine.run h.eng;
  check_float "node 0" 10.0 !t1;
  check_float "node 1 runs in parallel" 10.0 !t2

(* --- batching --------------------------------------------------------------- *)

let count h key = Sim.Stats.count h.stats key

let test_batch_coalesces_and_costs () =
  let h = make ~batch:(Net.Batch.cfg ~hold:50.0 ()) () in
  join_all h "g" [ 0; 1; 2 ];
  let cost0 = Net.Fabric.total_cost h.bus in
  let msgs0 = count h "net.msgs" in
  let frames0 = count h "net.frames" in
  let t_issue = Sim.Engine.now h.eng in
  let resps = ref [] in
  List.iter
    (fun m ->
      Vsync.gcast_batch h.vs ~group:"g" ~from:3 ~msg_size:10
        ~on_done:(fun ~resp ~work ~responders ->
          check_float "no work" 0.0 work;
          Alcotest.(check int) "three responders" 3 responders;
          resps := Option.get resp :: !resps)
        m)
    [ "a"; "b"; "c" ];
  Sim.Engine.run h.eng;
  List.iter
    (fun node ->
      Alcotest.(check (list string)) "batch order" [ "a"; "b"; "c" ] (log h node))
    [ 0; 1; 2 ];
  (* Member 0's frame lands first, so its responses win the race. *)
  Alcotest.(check (list string)) "piggybacked responses" [ "0:a"; "0:b"; "0:c" ]
    (List.rev !resps);
  (* One batch: 3 member frames of 30 bytes, 3 empty frame acks, one
     9-byte response frame back to the single issuer — α(2g+r)+β(...)
     with g=3, r=1. *)
  check_float "batched cost"
    ((alpha +. 30.0) *. 3.0 +. alpha *. 3.0 +. (alpha +. 9.0))
    (Net.Fabric.total_cost h.bus -. cost0);
  Alcotest.(check int) "7 msgs on the wire" 7 (count h "net.msgs" - msgs0);
  Alcotest.(check int) "4 coalesced frames" 4 (count h "net.frames" - frames0);
  Alcotest.(check int) "one batch" 1 (count h "vsync.batches");
  Alcotest.(check int) "three batched ops" 3 (count h "vsync.batched_ops");
  Alcotest.(check int) "no cap cut" 0 (count h "vsync.batch_cuts");
  Alcotest.(check bool) "held for the window" true
    (Sim.Engine.now h.eng >= t_issue +. 50.0)

let test_batch_cheaper_than_unbatched () =
  let run batched =
    let h =
      if batched then make ~batch:(Net.Batch.cfg ~hold:50.0 ()) () else make ()
    in
    join_all h "g" [ 0; 1; 2 ];
    let cost0 = Net.Fabric.total_cost h.bus in
    for i = 1 to 8 do
      Vsync.gcast_batch h.vs ~group:"g" ~from:3 ~msg_size:10
        ~on_done:(fun ~resp:_ ~work:_ ~responders:_ -> ())
        (Printf.sprintf "m%d" i)
    done;
    Sim.Engine.run h.eng;
    (Net.Fabric.total_cost h.bus -. cost0, log h 0)
  in
  let on_cost, on_log = run true in
  let off_cost, off_log = run false in
  Alcotest.(check (list string)) "same deliveries either way" off_log on_log;
  Alcotest.(check bool) "batching strictly cheaper" true (on_cost < off_cost)

let test_batch_cut_on_op_cap () =
  let h = make ~batch:(Net.Batch.cfg ~max_ops:2 ~hold:10_000.0 ()) () in
  join_all h "g" [ 0; 1; 2 ];
  let t0 = Sim.Engine.now h.eng in
  let done_ops = ref 0 in
  List.iter
    (fun m ->
      Vsync.gcast_batch h.vs ~group:"g" ~from:3 ~msg_size:5
        ~on_done:(fun ~resp:_ ~work:_ ~responders:_ -> incr done_ops)
        m)
    [ "a"; "b" ];
  Sim.Engine.run h.eng;
  Alcotest.(check int) "both ops answered" 2 !done_ops;
  Alcotest.(check int) "cap cut counted" 1 (count h "vsync.batch_cuts");
  (* The cut flushes immediately: nothing waits out the 10k hold. *)
  Alcotest.(check bool) "no hold-window wait" true
    (Sim.Engine.now h.eng < t0 +. 10_000.0)

let test_batch_multi_issuer_piggyback () =
  let h = make ~batch:(Net.Batch.cfg ~hold:50.0 ()) () in
  join_all h "g" [ 0; 1; 2 ];
  let frames0 = count h "net.frames" in
  let got = Array.make 2 [] in
  for i = 1 to 6 do
    let issuer = 3 + (i mod 2) in
    Vsync.gcast_batch h.vs ~group:"g" ~from:issuer ~msg_size:4
      ~on_done:(fun ~resp ~work:_ ~responders:_ ->
        got.(issuer - 3) <- Option.get resp :: got.(issuer - 3))
      (Printf.sprintf "m%d" i)
  done;
  Sim.Engine.run h.eng;
  let l0 = log h 0 in
  Alcotest.(check int) "all six delivered" 6 (List.length l0);
  Alcotest.(check (list string)) "same order everywhere" l0 (log h 1);
  Alcotest.(check (list string)) "same order everywhere" l0 (log h 2);
  (* Each issuer gets its own ops' responses, in batch order. *)
  Alcotest.(check (list string)) "issuer 3's responses"
    [ "0:m2"; "0:m4"; "0:m6" ] (List.rev got.(0));
  Alcotest.(check (list string)) "issuer 4's responses"
    [ "0:m1"; "0:m3"; "0:m5" ] (List.rev got.(1));
  (* 3 member frames + one response frame per distinct issuer. *)
  Alcotest.(check int) "five frames" 5 (count h "net.frames" - frames0)

let test_batch_flushed_before_join () =
  let h = make ~batch:(Net.Batch.cfg ~hold:10_000.0 ()) () in
  join_all h "g" [ 0; 1; 2 ];
  let responders = ref (-1) in
  Vsync.gcast_batch h.vs ~group:"g" ~from:4 ~msg_size:3
    ~on_done:(fun ~resp:_ ~work:_ ~responders:r -> responders := r)
    "a";
  (* The membership change flushes the window: the batch executes in
     the pre-join view, atomically w.r.t. view installation. *)
  Vsync.join h.vs ~group:"g" ~node:3 ~on_done:(fun () -> ());
  Sim.Engine.run h.eng;
  Alcotest.(check int) "delivered in the old view" 3 !responders;
  Alcotest.(check (list int)) "join applied after" [ 0; 1; 2; 3 ]
    (Vsync.members h.vs ~group:"g");
  Alcotest.(check bool) "no hold-window wait" true (Sim.Engine.now h.eng < 10_000.0)

let test_batch_crashed_issuer_items_cancelled () =
  let h = make ~batch:(Net.Batch.cfg ~hold:10_000.0 ()) () in
  join_all h "g" [ 0; 1; 2 ];
  let done3 = ref 0 and done4 = ref 0 in
  Vsync.gcast_batch h.vs ~group:"g" ~from:3 ~msg_size:3
    ~on_done:(fun ~resp:_ ~work:_ ~responders:_ -> incr done3)
    "from3";
  Vsync.gcast_batch h.vs ~group:"g" ~from:4 ~msg_size:3
    ~on_done:(fun ~resp:_ ~work:_ ~responders:_ -> incr done4)
    "from4";
  (* Crashing issuer 4 cancels its pending item in the window and
     flushes the survivors. *)
  Vsync.crash h.vs ~node:4;
  Sim.Engine.run h.eng;
  Alcotest.(check (list string)) "only the live issuer's op" [ "from3" ] (log h 0);
  Alcotest.(check int) "live issuer answered" 1 !done3;
  Alcotest.(check int) "dead issuer orphaned" 0 !done4

let test_batch_restrict_per_item () =
  let h = make ~batch:(Net.Batch.cfg ~hold:50.0 ()) () in
  join_all h "g" [ 0; 1; 2; 3 ];
  let r_restricted = ref (-1) and r_full = ref (-1) in
  Vsync.gcast_batch h.vs ~group:"g"
    ~restrict:(fun members -> List.filter (fun m -> m < 2) members)
    ~from:4 ~msg_size:1
    ~on_done:(fun ~resp:_ ~work:_ ~responders -> r_restricted := responders)
    "read";
  Vsync.gcast_batch h.vs ~group:"g" ~from:4 ~msg_size:1
    ~on_done:(fun ~resp:_ ~work:_ ~responders -> r_full := responders)
    "write";
  Sim.Engine.run h.eng;
  Alcotest.(check int) "restricted item: 2 responders" 2 !r_restricted;
  Alcotest.(check int) "full item: 4 responders" 4 !r_full;
  Alcotest.(check (list string)) "member 3 only sees the full item" [ "write" ]
    (log h 3);
  Alcotest.(check (list string)) "member 0 sees both in order" [ "read"; "write" ]
    (log h 0)

let test_batch_degenerates_without_cfg () =
  let h = make () in
  join_all h "g" [ 0; 1; 2; 3 ];
  let before = Net.Fabric.total_cost h.bus in
  let resp_len = ref 0 in
  Vsync.gcast_batch h.vs ~group:"g" ~from:4 ~msg_size:10
    ~on_done:(fun ~resp ~work:_ ~responders:_ ->
      resp_len := String.length (Option.get resp))
    "0123456789";
  Sim.Engine.run h.eng;
  let expect =
    Net.Cost_model.gcast_cost
      (Net.Cost_model.v ~alpha ~beta)
      ~group_size:4 ~msg_size:10 ~resp_size:!resp_len
  in
  check_float "plain gcast cost" expect (Net.Fabric.total_cost h.bus -. before);
  Alcotest.(check int) "not counted as a batch" 0 (count h "vsync.batches")

let test_batch_flush_failpoint_crash_mid_batch () =
  let h = make ~batch:(Net.Batch.cfg ~hold:50.0 ()) () in
  join_all h "g" [ 0; 1; 2 ];
  (* Arm the flush site to crash the opening issuer at the instant the
     window closes: its items must be orphaned, the batch must still
     complete for nobody (all items were the dead issuer's). *)
  Sim.Failpoint.arm (Vsync.failpoints h.vs) ~site:"vsync.batch.flush"
    (fun info ->
      Vsync.crash h.vs ~node:info.Sim.Failpoint.fp_node;
      Sim.Failpoint.Nothing);
  let answered = ref 0 in
  List.iter
    (fun m ->
      Vsync.gcast_batch h.vs ~group:"g" ~from:3 ~msg_size:2
        ~on_done:(fun ~resp:_ ~work:_ ~responders:_ -> incr answered)
        m)
    [ "a"; "b" ];
  Sim.Engine.run h.eng;
  Alcotest.(check int) "dead issuer's items orphaned" 0 !answered;
  Alcotest.(check (list string)) "nothing delivered" [] (log h 0);
  Alcotest.(check (list string)) "no wedged groups" []
    (List.map fst (Vsync.pending_groups h.vs))

let () =
  Alcotest.run "vsync"
    [
      ( "membership",
        [
          Alcotest.test_case "join" `Quick test_join_membership;
          Alcotest.test_case "join idempotent" `Quick test_join_idempotent;
          Alcotest.test_case "leave + evict" `Quick test_leave;
          Alcotest.test_case "view ids monotonic" `Quick test_view_ids_monotonic;
        ] );
      ( "gcast",
        [
          Alcotest.test_case "delivers to all members" `Quick test_gcast_delivers_to_all;
          Alcotest.test_case "total order" `Quick test_gcast_total_order;
          Alcotest.test_case "cost matches §3.3 formula" `Quick
            test_gcast_cost_matches_formula;
          Alcotest.test_case "empty group fails" `Quick test_gcast_empty_group_fails;
          Alcotest.test_case "read-group restriction" `Quick test_gcast_restrict;
          Alcotest.test_case "work accounting" `Quick test_gcast_work_accounting;
        ] );
      ( "state transfer",
        [
          Alcotest.test_case "join receives snapshot" `Quick test_join_state_transfer;
          Alcotest.test_case "join serialised with gcasts" `Quick
            test_join_serialised_with_gcasts;
        ] );
      ( "crashes",
        [
          Alcotest.test_case "crash removes from views" `Quick test_crash_removes_from_views;
          Alcotest.test_case "crash during gcast completes" `Quick
            test_crash_during_gcast_completes;
          Alcotest.test_case "crashed issuer orphaned" `Quick
            test_crashed_issuer_gets_no_callback;
          Alcotest.test_case "recover and rejoin" `Quick test_recover_and_rejoin;
          Alcotest.test_case "joiner crash aborts transfer" `Quick
            test_crash_of_joiner_aborts_transfer;
          Alcotest.test_case "no wedge on stale-view gcast" `Quick
            test_gcast_after_crash_before_view_change;
          Alcotest.test_case "group loss detected" `Quick test_group_loss_detected;
          Alcotest.test_case "in-flight transfer prevents loss" `Quick
            test_no_loss_with_transfer_in_flight;
        ] );
      ( "eager",
        [
          Alcotest.test_case "eager response beats flush" `Quick
            test_eager_response_beats_flush;
          Alcotest.test_case "single completion" `Quick test_eager_fail_waits_for_all;
        ] );
      ( "exec_local",
        [
          Alcotest.test_case "serial processor" `Quick test_exec_local_serial_processor;
          Alcotest.test_case "nodes run in parallel" `Quick test_exec_local_parallel_nodes;
        ] );
      ( "batch",
        [
          Alcotest.test_case "coalesces ops and amortises alpha" `Quick
            test_batch_coalesces_and_costs;
          Alcotest.test_case "cheaper than unbatched, same deliveries" `Quick
            test_batch_cheaper_than_unbatched;
          Alcotest.test_case "op cap cuts the window" `Quick test_batch_cut_on_op_cap;
          Alcotest.test_case "piggybacks per-issuer responses" `Quick
            test_batch_multi_issuer_piggyback;
          Alcotest.test_case "membership change flushes first" `Quick
            test_batch_flushed_before_join;
          Alcotest.test_case "crashed issuer's window items cancelled" `Quick
            test_batch_crashed_issuer_items_cancelled;
          Alcotest.test_case "per-item read-group restriction" `Quick
            test_batch_restrict_per_item;
          Alcotest.test_case "degenerates to gcast without cfg" `Quick
            test_batch_degenerates_without_cfg;
          Alcotest.test_case "crash at flush orphans the batch" `Quick
            test_batch_flush_failpoint_crash_mid_batch;
        ] );
    ]
