(* The sharded composition root (Core.Shard): partition totality and
   stability, domain-count independence (merged trace, stats and
   outcome are byte-identical at any D — the property that makes the
   multi-domain runner safe to use for checking at all), cross-shard
   snapshot atomicity, and a pinned sharded replay digest.

   Set PASO_PIN_PRINT=1 to print actual values when intentionally
   re-pinning. *)

open Paso

let printing = Sys.getenv_opt "PASO_PIN_PRINT" = Some "1"
let vs s = Value.Sym s
let vi i = Value.Int i

(* ------------------------------------------------------------------ *)
(* Partition: total, stable, pinned                                    *)
(* ------------------------------------------------------------------ *)

let test_partition () =
  let names = List.init 200 (fun i -> Printf.sprintf "2:h%d" i) in
  List.iter
    (fun shards ->
      List.iter
        (fun c ->
          let s = Shard.shard_of_class ~shards c in
          Alcotest.(check bool) "in range" true (s >= 0 && s < shards);
          Alcotest.(check int) "stable" s (Shard.shard_of_class ~shards c))
        names)
    [ 1; 2; 4; 8 ];
  Alcotest.(check int) "single shard takes all" 0 (Shard.shard_of_class ~shards:1 "anything");
  (* The partition is part of the replay-artifact contract: a sharded
     artifact only reproduces if the class→shard map never changes.
     Pin a sample so an accidental hash tweak is caught here, not by a
     drifted replay digest. *)
  let sample = [ "2:a"; "2:b"; "2:c"; "2:d"; "3:x"; "all" ] in
  let actual = List.map (Shard.shard_of_class ~shards:4) sample in
  if printing then
    Format.printf "partition pin: [%s]@."
      (String.concat "; " (List.map string_of_int actual));
  Alcotest.(check (list int)) "pinned class->shard sample" [ 0; 1; 2; 3; 0; 0 ] actual

(* ------------------------------------------------------------------ *)
(* The SPSC mailbox and the shared task partitioner                    *)
(* ------------------------------------------------------------------ *)

let test_mailbox () =
  let mb = Sim.Mailbox.create ~capacity:4 () in
  Alcotest.(check int) "capacity" 4 (Sim.Mailbox.capacity mb);
  List.iter (fun i -> Alcotest.(check bool) "push accepted" true (Sim.Mailbox.push mb i)) [ 1; 2; 3; 4 ];
  Alcotest.(check bool) "full ring refuses" false (Sim.Mailbox.push mb 5);
  Alcotest.(check int) "length" 4 (Sim.Mailbox.length mb);
  Alcotest.(check (option int)) "fifo pop" (Some 1) (Sim.Mailbox.pop mb);
  Alcotest.(check bool) "freed slot accepts" true (Sim.Mailbox.push mb 5);
  let drained = ref [] in
  Alcotest.(check int) "drain count" 4 (Sim.Mailbox.drain mb (fun x -> drained := x :: !drained));
  Alcotest.(check (list int)) "fifo drain" [ 2; 3; 4; 5 ] (List.rev !drained);
  Alcotest.(check (option int)) "empty" None (Sim.Mailbox.pop mb)

let test_parallel () =
  let seq, _ = Sim.Parallel.map ~total:10 (fun i -> i * i) in
  List.iter
    (fun domains ->
      let rows, timing = Sim.Parallel.map ~domains ~total:10 (fun i -> i * i) in
      Alcotest.(check (list int))
        (Printf.sprintf "index-ordered at D=%d" domains)
        (Array.to_list seq) (Array.to_list rows);
      Alcotest.(check int) "one timing row per domain" domains (List.length timing))
    [ 1; 2; 3; 4 ]

(* ------------------------------------------------------------------ *)
(* Domain-count independence over random sharded schedules             *)
(* ------------------------------------------------------------------ *)

(* 200 random schedules rotating over the sharded rows of the fuzz
   matrix (2 and 4 shards; head/hash, signature/tree, adaptive+eager,
   durable), each run at D = 1, 2 and 4: every observable of the
   outcome must be byte-identical. *)
let test_domain_independence () =
  let configs =
    List.filter (fun c -> c.Check.Schedule.shards > 1) (Check.Fuzz.matrix ())
  in
  Alcotest.(check bool) "sharded matrix rows present" true (List.length configs >= 3);
  for i = 0 to 199 do
    let _, _, o1 = Check.Fuzz.run_one ~domains:1 ~configs ~seed:5 i in
    let _, _, o2 = Check.Fuzz.run_one ~domains:2 ~configs ~seed:5 i in
    let _, _, o4 = Check.Fuzz.run_one ~domains:4 ~configs ~seed:5 i in
    let eq name f =
      Alcotest.(check string) (Printf.sprintf "schedule %d: %s" i name) (f o1) (f o2);
      Alcotest.(check string) (Printf.sprintf "schedule %d: %s (D=4)" i name) (f o1) (f o4)
    in
    eq "trace digest" (fun o -> o.Check.Runner.trace_digest);
    eq "ops" (fun o -> string_of_int o.Check.Runner.ops);
    eq "completed" (fun o -> string_of_int o.Check.Runner.completed);
    eq "final time" (fun o -> Printf.sprintf "%h" o.Check.Runner.final_time);
    Alcotest.(check int)
      (Printf.sprintf "schedule %d: clean" i)
      0
      (List.length o1.Check.Runner.violations)
  done

(* The merged stat bank is part of the deterministic output too: same
   keys, same counts, same totals at any D. *)
let test_stats_merge_independent () =
  let config = { Check.Schedule.default with shards = 4; seed = 3 } in
  let steps = Check.Fuzz.gen_steps (Sim.Rng.make 99) ~len:120 in
  let _, t1 = Check.Runner.run_sharded ~domains:1 config steps in
  let _, t3 = Check.Runner.run_sharded ~domains:3 config steps in
  let keys = Shard.stat_keys t1 in
  Alcotest.(check (list string)) "same stat keys" keys (Shard.stat_keys t3);
  List.iter
    (fun k ->
      Alcotest.(check int) ("count " ^ k) (Shard.stat_count t1 k) (Shard.stat_count t3 k);
      Alcotest.(check bool) ("total " ^ k) true
        (Shard.stat_total t1 k = Shard.stat_total t3 k))
    keys;
  Alcotest.(check string) "same merged trace" (Shard.rendered_trace t1)
    (Shard.rendered_trace t3)

(* ------------------------------------------------------------------ *)
(* Cross-shard snapshot atomicity                                      *)
(* ------------------------------------------------------------------ *)

(* Force the race the confirm phase exists for: shard 1's collect is
   delayed by a failpoint, and once shard 0's sub-snapshot has locally
   accepted we mutate shard 0's class. When shard 1's vote finally
   lands, the coordinator's barrier re-read must notice shard 0's
   moved serial, re-collect it, and only then accept — so the merged
   result reflects one global cut, not two divergent local ones. *)
let test_snapshot_atomicity () =
  let cfg = { System.default_config with n = 6; lambda = 1 } in
  let t = Shard.create ~shards:2 cfg in
  let name h =
    (Obj_class.classify cfg.System.classing
       (Pobj.make ~uid:(Uid.make ~machine:0 ~serial:0) [ vs h; vi 0 ]))
      .Obj_class.name
  in
  let heads = [ "a"; "b"; "c"; "d"; "e"; "f" ] in
  let h0 = List.find (fun h -> Shard.shard_of_class ~shards:2 (name h) = 0) heads in
  let h1 = List.find (fun h -> Shard.shard_of_class ~shards:2 (name h) = 1) heads in
  Shard.insert t ~machine:0 [ vs h0; vi 1 ] ~on_done:(fun () -> ());
  Shard.insert t ~machine:1 [ vs h1; vi 1 ] ~on_done:(fun () -> ());
  Shard.run t;
  (* issue from a machine outside wg(h1) so shard 1's collect really
     goes over the wire — and delay its first message by 8000 (the
     [net.transmit] site honours Delay; the deliver site only serves
     crash handlers) *)
  let wg1 = System.write_group (Shard.sub t 1) ~cls:(name h1) in
  let m = List.find (fun m -> not (List.mem m wg1)) (List.init cfg.System.n Fun.id) in
  Sim.Failpoint.arm
    (System.failpoints (Shard.sub t 1))
    ~site:"net.transmit" ~skip:0 ~times:1
    (fun _ -> Sim.Failpoint.Delay 8000.0);
  let fired = ref 0 in
  let result = ref None in
  Shard.snapshot t ~machine:m
    (Template.make [ Template.Any; Template.Any ])
    ~on_done:(fun r ->
      incr fired;
      result := r);
  (* step until shard 0 has locally accepted, while shard 1 is still
     held up by the delayed delivery *)
  let sub0 = Shard.sub t 0 in
  let guard = ref 0 in
  while System.snapshots sub0 = [] && !guard < 60 do
    incr guard;
    Shard.advance t 100.0
  done;
  Alcotest.(check bool) "shard 0 accepted early" true (System.snapshots sub0 <> []);
  Alcotest.(check int) "cross-shard snapshot still pending" 0 !fired;
  (* mutate shard 0's class after its local cut *)
  Shard.insert t ~machine:0 [ vs h0; vi 2 ] ~on_done:(fun () -> ());
  Shard.run t;
  Alcotest.(check int) "completed exactly once" 1 !fired;
  (match !result with
  | Some rows ->
      Alcotest.(check int) "both classes in the cut" 2 (List.length rows);
      List.iter
        (fun (_, o) -> Alcotest.(check bool) "every class answered" true (o <> None))
        rows
  | None -> Alcotest.fail "cross-shard snapshot failed");
  Alcotest.(check bool) "moved shard was re-collected" true (Shard.cross_retries t >= 1)

(* ------------------------------------------------------------------ *)
(* Sharded replay determinism pin                                      *)
(* ------------------------------------------------------------------ *)

(* A fixed sharded schedule's digest, pinned at the commit introducing
   the sharded engine; and the artifact round-trip (the [shards] field
   must survive JSON) replays to the same digest. *)
let pinned_sharded_digest = "9c529ad42c97f53b3ca7d66f4a3c98aa"

let test_replay_pin () =
  let config = { Check.Schedule.default with shards = 4; seed = 2026 } in
  let steps = Check.Fuzz.gen_steps (Sim.Rng.make 2026) ~len:80 in
  let o1 = Check.Runner.run config steps in
  Alcotest.(check int) "clean run" 0 (List.length o1.Check.Runner.violations);
  if printing then
    Format.printf "sharded replay pin: %S@." o1.Check.Runner.trace_digest;
  Alcotest.(check string) "pinned sharded trace digest" pinned_sharded_digest
    o1.Check.Runner.trace_digest;
  let a = Check.Artifact.of_outcome config steps o1 in
  match Check.Artifact.of_json (Check.Artifact.to_json a) with
  | Error e -> Alcotest.fail ("artifact round-trip: " ^ e)
  | Ok a' ->
      Alcotest.(check int) "shards survive the artifact JSON" 4
        a'.Check.Artifact.a_config.Check.Schedule.shards;
      let o2 = Check.Runner.run ~domains:2 a'.Check.Artifact.a_config a'.Check.Artifact.a_steps in
      Alcotest.(check string) "replayed digest" o1.Check.Runner.trace_digest
        o2.Check.Runner.trace_digest

(* Shard 0 of any sharded system is seeded with stream 0 = the config
   seed itself: a 1-shard Shard.t is byte-identical to the plain
   System on the same schedule. *)
let test_single_shard_equals_system () =
  let config = { Check.Schedule.default with seed = 17 } in
  let steps = Check.Fuzz.gen_steps (Sim.Rng.make 17) ~len:100 in
  let plain = Check.Runner.run config steps in
  let sharded, _ = Check.Runner.run_sharded { config with shards = 1 } steps in
  Alcotest.(check string) "1-shard trace == plain System trace"
    plain.Check.Runner.trace_digest sharded.Check.Runner.trace_digest;
  Alcotest.(check int) "same ops" plain.Check.Runner.ops sharded.Check.Runner.ops;
  Alcotest.(check int) "same completions" plain.Check.Runner.completed
    sharded.Check.Runner.completed

(* ------------------------------------------------------------------ *)
(* Load-aware class migration (Core.Rebalance + the Shard overlay)     *)
(* ------------------------------------------------------------------ *)

(* Heads whose class names hash to shard 0 under [shards], plus cold
   heads elsewhere — the adversarial colocation the rebalancer exists
   to fix. *)
let colocated_heads cfg ~shards ~hot ~cold =
  let name h =
    (Obj_class.classify cfg.System.classing
       (Pobj.make ~uid:(Uid.make ~machine:0 ~serial:0) [ vs h; vi 0 ]))
      .Obj_class.name
  in
  let hs = ref [] and cs = ref [] and i = ref 0 in
  while List.length !hs < hot || List.length !cs < cold do
    let h = Printf.sprintf "h%d" !i in
    incr i;
    if Shard.shard_of_class ~shards (name h) = 0 && List.length !hs < hot then
      hs := h :: !hs
    else if Shard.shard_of_class ~shards (name h) <> 0 && List.length !cs < cold then
      cs := h :: !cs
  done;
  (List.rev !hs, List.rev !cs, name)

(* Drive a hot-shard workload through a rebalancing Shard.t and return
   it quiesced. 90% of traffic lands on the [hot] classes, all of which
   start on shard 0. *)
let drive_skewed ?(tracing = false) ?(ops = 2400) ~domains t hot cold =
  let rng = Sim.Rng.make 4242 in
  ignore (tracing, domains);
  let hot = Array.of_list hot and cold = Array.of_list cold in
  for i = 1 to ops do
    let m = Sim.Rng.int rng 6 in
    let head =
      if Sim.Rng.int rng 10 < 9 then Sim.Rng.choice rng hot else Sim.Rng.choice rng cold
    in
    (match Sim.Rng.int rng 3 with
    | 0 -> Shard.insert t ~machine:m [ vs head; vi i ] ~on_done:(fun () -> ())
    | 1 ->
        Shard.read t ~machine:m (Template.headed head [ Template.Any ])
          ~on_done:(fun _ -> ())
    | _ ->
        Shard.read_del t ~machine:m
          (Template.headed head [ Template.Any ])
          ~on_done:(fun _ -> ()));
    if i mod 64 = 0 then Shard.run t
  done;
  Shard.run t

let make_rebalanced ?(tracing = false) ~domains () =
  let cfg = { System.default_config with n = 6; lambda = 1 } in
  let t = Shard.create ~tracing ~shards:4 ~domains ~rebalance:Rebalance.default_cfg cfg in
  let hot, cold, _ = colocated_heads cfg ~shards:4 ~hot:3 ~cold:4 in
  drive_skewed ~tracing ~domains t hot cold;
  (t, hot, cold)

let test_rebalance_migrates () =
  let t, hot, _ = make_rebalanced ~domains:1 () in
  Alcotest.(check bool) "classes migrated" true (Shard.migrations t > 0);
  let placements = Shard.placements t in
  Alcotest.(check bool) "overlay populated" true (placements <> []);
  List.iter
    (fun (_, s) -> Alcotest.(check bool) "moved off the hot shard" true (s <> 0))
    placements;
  (* migrated classes keep answering: inserts route via the overlay to
     the target and reads find them there (a class may be empty after
     the read_del mix, so seed each one first) *)
  List.iter
    (fun h -> Shard.insert t ~machine:0 [ vs h; vi 777_777 ] ~on_done:(fun () -> ()))
    hot;
  Shard.run t;
  let answered = ref 0 in
  List.iter
    (fun h ->
      Shard.read t ~machine:0 (Template.headed h [ Template.Any ])
        ~on_done:(fun r -> if r <> None then incr answered))
    hot;
  Shard.run t;
  Alcotest.(check int) "every hot class still answers" (List.length hot) !answered;
  (* load actually spread: the hot shard no longer dominates the drain *)
  let loads = Shard.shard_loads t in
  let total = Array.fold_left ( +. ) 0.0 loads in
  Alcotest.(check bool) "load recorded" true (total > 0.0);
  Alcotest.(check (list (pair string string))) "replica audit clean" []
    (Shard.audit_replicas t);
  Alcotest.(check (list (pair string string))) "quiescent" [] (Shard.check_quiescent t)

(* The tentpole determinism claim: with rebalancing on, the merged
   trace, the migration count and the final placement are byte-identical
   at any domain count. *)
let test_rebalance_domain_independence () =
  let t1, _, _ = make_rebalanced ~tracing:true ~domains:1 () in
  let t2, _, _ = make_rebalanced ~tracing:true ~domains:2 () in
  let t4, _, _ = make_rebalanced ~tracing:true ~domains:4 () in
  Alcotest.(check bool) "migrations happened" true (Shard.migrations t1 > 0);
  Alcotest.(check int) "same migrations at D=2" (Shard.migrations t1) (Shard.migrations t2);
  Alcotest.(check int) "same migrations at D=4" (Shard.migrations t1) (Shard.migrations t4);
  Alcotest.(check (list (pair string int))) "same placement at D=2" (Shard.placements t1)
    (Shard.placements t2);
  Alcotest.(check (list (pair string int))) "same placement at D=4" (Shard.placements t1)
    (Shard.placements t4);
  let d t = Digest.to_hex (Digest.string (Shard.rendered_trace t)) in
  Alcotest.(check string) "same merged trace at D=2" (d t1) (d t2);
  Alcotest.(check string) "same merged trace at D=4" (d t1) (d t4)

(* A 1-shard composition with rebalancing enabled never migrates:
   there is nowhere to go, and the trace matches the rebalancing-off
   run byte for byte. *)
let test_rebalance_single_shard_noop () =
  let cfg = { System.default_config with n = 6; lambda = 1 } in
  let run rebalance =
    let t = Shard.create ~tracing:true ~shards:1 ?rebalance cfg in
    let hot, cold, _ = colocated_heads cfg ~shards:4 ~hot:3 ~cold:4 in
    drive_skewed ~tracing:true ~ops:800 ~domains:1 t hot cold;
    t
  in
  let on = run (Some Rebalance.default_cfg) in
  let off = run None in
  Alcotest.(check int) "no migrations" 0 (Shard.migrations on);
  Alcotest.(check (list (pair string int))) "empty overlay" [] (Shard.placements on);
  Alcotest.(check string) "trace identical to rebalancing-off"
    (Digest.to_hex (Digest.string (Shard.rendered_trace off)))
    (Digest.to_hex (Digest.string (Shard.rendered_trace on)))

(* The freshness token survives a migration: reads of a migrated class
   under the fast-read path still return the latest value, and a read
   racing a mutation still falls back to the quorum instead of serving
   stale state (the mutation serial and view id travel with the
   class). *)
let test_rebalance_fast_read_token () =
  let cfg = { System.default_config with n = 6; lambda = 1; fast_read = true } in
  let t = Shard.create ~shards:4 ~rebalance:Rebalance.default_cfg cfg in
  let hot, cold, name = colocated_heads cfg ~shards:4 ~hot:3 ~cold:4 in
  drive_skewed t hot cold ~domains:1;
  Alcotest.(check bool) "migrated" true (Shard.migrations t > 0);
  let cls, target = List.hd (Shard.placements t) in
  let head = List.find (fun h -> name h = cls) hot in
  (* mutate the migrated class, then read concurrently: the fast path
     must notice the moved serial and fall back *)
  let sys = Shard.sub t target in
  let fb0 = Sim.Stats.count (System.stats sys) "paso.fast_read_fallbacks" in
  let latest = ref None in
  Shard.insert t ~machine:0 [ vs head; vi 999_999 ] ~on_done:(fun () -> ());
  Shard.read t ~machine:5 (Template.headed head [ Template.Any ]) ~on_done:(fun r -> latest := r);
  Shard.run t;
  Alcotest.(check bool) "read answered" true (!latest <> None);
  Alcotest.(check bool) "stale fast read fell back to quorum" true
    (Sim.Stats.count (System.stats sys) "paso.fast_read_fallbacks" > fb0);
  (* quiesced fast read serves locally again post-migration *)
  let fr0 = Sim.Stats.count (System.stats sys) "paso.fast_reads" in
  Shard.read t ~machine:0 (Template.headed head [ Template.Any ]) ~on_done:(fun _ -> ());
  Shard.run t;
  Alcotest.(check bool) "fast path works after the move" true
    (Sim.Stats.count (System.stats sys) "paso.fast_reads" > fr0)

(* ------------------------------------------------------------------ *)
(* Live adaptive policies under the sharded engine                     *)
(* ------------------------------------------------------------------ *)

let make_policy_run ?rebalance ~domains () =
  let cfg =
    { System.default_config with
      n = 6;
      lambda = 1;
      policy = Adaptive.Live_policy.counter ~k:2.0 () }
  in
  let t = Shard.create ~tracing:true ~shards:4 ~domains ?rebalance cfg in
  let hot, cold, _ = colocated_heads cfg ~shards:4 ~hot:3 ~cold:4 in
  drive_skewed ~tracing:true ~domains t hot cold;
  t

(* Live counters ride migration: a rebalanced run executes exactly the
   joins and leaves of a rebalance-off run — the (machine, class)
   counters travel with the class, so which shard hosts it is invisible
   to the §5.1 machines. *)
let test_policy_rides_migration () =
  let on = make_policy_run ~rebalance:Rebalance.default_cfg ~domains:1 () in
  let off = make_policy_run ~domains:1 () in
  Alcotest.(check bool) "hot classes migrated" true (Shard.migrations on > 0);
  Alcotest.(check bool) "policy active" true (Shard.stat_count on "policy.joins" > 0);
  Alcotest.(check int) "joins identical to unmigrated run"
    (Shard.stat_count off "policy.joins")
    (Shard.stat_count on "policy.joins");
  Alcotest.(check int) "leaves identical to unmigrated run"
    (Shard.stat_count off "policy.leaves")
    (Shard.stat_count on "policy.leaves");
  Alcotest.(check (list (pair string string))) "replica audit clean" []
    (Shard.audit_replicas on);
  Alcotest.(check (list (pair string string))) "quiescent" [] (Shard.check_quiescent on)

(* And the whole policy-plus-rebalance composition stays a pure
   function of the round sequence: byte-identical merged traces and
   identical join/leave counts at any domain count. *)
let test_policy_domain_independence () =
  let t1 = make_policy_run ~rebalance:Rebalance.default_cfg ~domains:1 () in
  let t2 = make_policy_run ~rebalance:Rebalance.default_cfg ~domains:2 () in
  let t4 = make_policy_run ~rebalance:Rebalance.default_cfg ~domains:4 () in
  let d t = Digest.to_hex (Digest.string (Shard.rendered_trace t)) in
  Alcotest.(check bool) "joins happened" true (Shard.stat_count t1 "policy.joins" > 0);
  Alcotest.(check int) "same joins at D=2" (Shard.stat_count t1 "policy.joins")
    (Shard.stat_count t2 "policy.joins");
  Alcotest.(check int) "same joins at D=4" (Shard.stat_count t1 "policy.joins")
    (Shard.stat_count t4 "policy.joins");
  Alcotest.(check int) "same leaves at D=4" (Shard.stat_count t1 "policy.leaves")
    (Shard.stat_count t4 "policy.leaves");
  Alcotest.(check string) "same merged trace at D=2" (d t1) (d t2);
  Alcotest.(check string) "same merged trace at D=4" (d t1) (d t4)

let () =
  Alcotest.run "shard"
    [
      ( "partition",
        [
          Alcotest.test_case "total, stable, pinned" `Quick test_partition;
        ] );
      ( "plumbing",
        [
          Alcotest.test_case "spsc mailbox" `Quick test_mailbox;
          Alcotest.test_case "parallel map reassembly" `Quick test_parallel;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "200 schedules, D in {1,2,4}" `Quick test_domain_independence;
          Alcotest.test_case "merged stats independent of D" `Quick
            test_stats_merge_independent;
          Alcotest.test_case "1 shard == plain system" `Quick
            test_single_shard_equals_system;
          Alcotest.test_case "sharded replay pin + artifact round-trip" `Quick
            test_replay_pin;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "cross-shard atomic cut under races" `Quick
            test_snapshot_atomicity;
        ] );
      ( "rebalance",
        [
          Alcotest.test_case "hot classes migrate and keep answering" `Quick
            test_rebalance_migrates;
          Alcotest.test_case "rebalanced runs independent of D" `Quick
            test_rebalance_domain_independence;
          Alcotest.test_case "1 shard never migrates" `Quick
            test_rebalance_single_shard_noop;
          Alcotest.test_case "freshness token survives migration" `Quick
            test_rebalance_fast_read_token;
        ] );
      ( "policy",
        [
          Alcotest.test_case "live counters ride migration" `Quick
            test_policy_rides_migration;
          Alcotest.test_case "policy runs independent of D" `Quick
            test_policy_domain_independence;
        ] );
    ]
