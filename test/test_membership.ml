(* Unit tests for the membership layer in isolation: class placement,
   and the probation / loss-generation machinery under synthetic view
   changes (crashes and rejoins driven directly through the vsync
   layer, no [System] on top). *)

open Paso

type h = {
  eng : Sim.Engine.t;
  stats : Sim.Stats.t;
  mem : Membership.t;
  vs : Membership.vsync;
}

(* λ = 1 so a two-member quorum lifts probation: the smallest setup in
   which a group can lose its last member and re-form. *)
let make ?(n = 6) ?(lambda = 1) () =
  let eng = Sim.Engine.create () in
  let stats = Sim.Stats.create () in
  let trace = Sim.Trace.create () in
  let bus =
    Net.Fabric.shared_bus eng (Net.Cost_model.v ~alpha:100.0 ~beta:1.0) stats
  in
  let servers =
    Array.init n (fun machine -> Server.create ~stats ~machine ~kind:Storage.Hash ())
  in
  let mem =
    Membership.create ~n ~lambda ~seed:7 ~use_read_groups:true ~group_map:None
      ~servers ~engine:eng ~stats ~trace
  in
  let callbacks =
    {
      Vsync.deliver =
        (fun ~node ~group:_ ~from:_ msg ->
          let resp, work, _woken = Server.handle servers.(node) msg in
          (resp, work));
      resp_size = (function None -> 0 | Some o -> Pobj.size o);
      state_of =
        (fun ~node ~group ->
          let snapshot, size =
            Server.snapshot servers.(node)
              ~classes:(Membership.classes_of_group mem group)
          in
          (Membership.Full snapshot, size));
      state_delta = (fun ~node:_ ~group:_ ~joiner:_ -> None);
      install_state =
        (fun ~node ~group:_ -> function
          | Membership.Full s -> Server.install servers.(node) s
          | Membership.Delta d -> Server.install_delta servers.(node) d);
      on_view = (fun ~node:_ _ -> Membership.flush_probation mem);
      on_evict = (fun ~node:_ ~group:_ -> ());
      on_group_lost = (fun ~group -> ignore (Membership.note_group_lost mem ~group));
    }
  in
  let vs = Vsync.make ~engine:eng ~fabric:bus ~stats ~trace ~n callbacks in
  Membership.attach_vsync mem vs;
  { eng; stats; mem; vs }

let info name = { Obj_class.name; cls_arity = 2; head = Some (Value.Sym name) }

(* Register a class and run the support's joins to quiescence. *)
let ensure h name =
  let cs, created = Membership.ensure h.mem (info name) in
  Sim.Engine.run h.eng;
  (cs, created)

let crash_members h group =
  List.iter (fun node -> Vsync.crash h.vs ~node) (Vsync.members h.vs ~group);
  Sim.Engine.run h.eng

let rejoin h group nodes =
  List.iter
    (fun node ->
      Vsync.recover h.vs ~node;
      Vsync.join h.vs ~group ~node ~on_done:(fun () -> ()))
    nodes;
  Sim.Engine.run h.eng

(* --- class placement ----------------------------------------------------- *)

let test_ensure_support () =
  let h = make ~lambda:1 () in
  let cs, created = ensure h "t" in
  Alcotest.(check bool) "created" true created;
  Alcotest.(check int) "basic support is lambda+1" 2 (List.length cs.Membership.basic);
  Alcotest.(check (list int))
    "support joined the write group" cs.Membership.basic
    (Vsync.members h.vs ~group:cs.Membership.group);
  let cs', created' = ensure h "t" in
  Alcotest.(check bool) "second ensure finds it" false created';
  Alcotest.(check string) "same group" cs.Membership.group cs'.Membership.group

let test_write_group_tracks_views () =
  let h = make ~lambda:1 () in
  let cs, _ = ensure h "t" in
  let outsider =
    List.find
      (fun m -> not (List.mem m cs.Membership.basic))
      [ 0; 1; 2; 3; 4; 5 ]
  in
  rejoin h cs.Membership.group [ outsider ];
  Alcotest.(check bool) "joined member visible in wg" true
    (List.mem outsider (Membership.write_group h.mem ~cls:"t"))

(* --- probation under synthetic view changes ------------------------------ *)

let test_probation_gated_by_durability () =
  let h = make ~lambda:1 () in
  let cs, _ = ensure h "t" in
  let group = cs.Membership.group in
  crash_members h group;
  (* Without durability a lost group cannot re-form from disks, so the
     gate stays open even though the loss was recorded. *)
  Alcotest.(check bool) "no probation before enable" false
    (Membership.probational h.mem group);
  Alcotest.(check int) "loss generation still bumped" 1
    (Membership.probation_generation h.mem group)

let test_probation_lifts_at_quorum () =
  let h = make ~lambda:1 () in
  Membership.enable_probation h.mem;
  let cs, _ = ensure h "t" in
  let group = cs.Membership.group in
  let support = cs.Membership.basic in
  crash_members h group;
  Alcotest.(check bool) "probational after total loss" true
    (Membership.probational h.mem group);
  (* One recovered member is not a quorum at λ = 1... *)
  rejoin h group [ List.hd support ];
  Alcotest.(check bool) "one member below quorum" true
    (Membership.probational h.mem group);
  (* ...two are: the probational check itself lifts the quarantine. *)
  rejoin h group [ List.nth support 1 ];
  Alcotest.(check bool) "quorum lifts probation" false
    (Membership.probational h.mem group);
  Alcotest.(check bool) "stays lifted" false (Membership.probational h.mem group)

let test_generation_counts_losses () =
  let h = make ~lambda:1 () in
  Membership.enable_probation h.mem;
  let cs, _ = ensure h "t" in
  let group = cs.Membership.group in
  Alcotest.(check int) "no losses yet" 0 (Membership.probation_generation h.mem group);
  crash_members h group;
  rejoin h group cs.Membership.basic;
  crash_members h group;
  Alcotest.(check int) "one bump per total loss" 2
    (Membership.probation_generation h.mem group)

let test_straddle_guard () =
  let h = make ~lambda:1 () in
  Membership.enable_probation h.mem;
  let cs, _ = ensure h "t" in
  let group = cs.Membership.group in
  let clean = Membership.straddle_guard h.mem group in
  Alcotest.(check bool) "no loss, no straddle" false (clean ());
  let straddled = Membership.straddle_guard h.mem group in
  crash_members h group;
  rejoin h group cs.Membership.basic;
  (* Probation has lifted, but the generation moved while the op was in
     flight: the guard captured before the loss must still fire... *)
  Alcotest.(check bool) "probation lifted" false (Membership.probational h.mem group);
  Alcotest.(check bool) "guard sees the straddle" true (straddled ());
  (* ...and a guard captured after the loss must not. *)
  let fresh = Membership.straddle_guard h.mem group in
  Alcotest.(check bool) "fresh guard is clean" false (fresh ())

(* --- per-class freshness token ------------------------------------------- *)

(* Regression (one generation source of truth): the router used to keep
   its own per-class mutation serial, advanced only under gcast
   batching — with batching off, nothing tracked mutations and a
   freshness consumer would have trusted a stale capture. The serial
   now lives here, advanced unconditionally; Membership has no batching
   knowledge at all, so the token moves identically in every router
   mode. *)
let test_token_tracks_mutations () =
  let h = make ~lambda:1 () in
  let _cs, _ = ensure h "t" in
  Alcotest.(check int) "serial starts at zero" 0
    (Membership.mutation_serial h.mem ~cls:"t");
  let t0 = Membership.class_token h.mem ~cls:"t" in
  Membership.note_mutation h.mem ~cls:"t";
  Alcotest.(check int) "mutation advances the serial" 1
    (Membership.mutation_serial h.mem ~cls:"t");
  Alcotest.(check bool) "token moved" true
    (Membership.class_token h.mem ~cls:"t" <> t0);
  Alcotest.(check int) "other classes unaffected" 0
    (Membership.mutation_serial h.mem ~cls:"u")

let test_fresh_guard_mutation_and_view () =
  let h = make ~lambda:1 () in
  let cs, _ = ensure h "t" in
  let group = cs.Membership.group in
  let fresh = Membership.fresh_guard h.mem ~cls:"t" ~group in
  Alcotest.(check bool) "untouched class is fresh" true (fresh ());
  (* A replicated mutation invalidates captures taken before it... *)
  let stale_mut = Membership.fresh_guard h.mem ~cls:"t" ~group in
  Membership.note_mutation h.mem ~cls:"t";
  Alcotest.(check bool) "mutation staled the capture" false (stale_mut ());
  Alcotest.(check bool) "recapture is fresh again" true
    (Membership.fresh_guard h.mem ~cls:"t" ~group ());
  (* ...and so does a view change (an outsider joining the group). *)
  let stale_view = Membership.fresh_guard h.mem ~cls:"t" ~group in
  let outsider =
    List.find (fun m -> not (List.mem m cs.Membership.basic)) [ 0; 1; 2; 3; 4; 5 ]
  in
  rejoin h group [ outsider ];
  Alcotest.(check bool) "view change staled the capture" false (stale_view ())

let test_fresh_guard_probation () =
  let h = make ~lambda:1 () in
  Membership.enable_probation h.mem;
  let cs, _ = ensure h "t" in
  let group = cs.Membership.group in
  crash_members h group;
  rejoin h group [ List.hd cs.Membership.basic ];
  (* One member is below the λ+1 recovery quorum: probational, so even
     a guard captured now must refuse to certify a response. *)
  Alcotest.(check bool) "probational group never fresh" false
    (Membership.fresh_guard h.mem ~cls:"t" ~group ());
  rejoin h group [ List.nth cs.Membership.basic 1 ];
  Alcotest.(check bool) "quorum restores freshness" true
    (Membership.fresh_guard h.mem ~cls:"t" ~group ())

let test_defer_and_flush () =
  let h = make ~lambda:1 () in
  Membership.enable_probation h.mem;
  let cs, _ = ensure h "t" in
  let group = cs.Membership.group in
  let issuer =
    List.find (fun m -> not (List.mem m cs.Membership.basic)) [ 0; 1; 2; 3; 4; 5 ]
  in
  crash_members h group;
  let resumed = ref 0 in
  Membership.defer_probation h.mem ~machine:issuer ~group (fun () -> incr resumed);
  Membership.flush_probation h.mem;
  Sim.Engine.run h.eng;
  Alcotest.(check int) "parked while probational" 0 !resumed;
  (* The rejoin's view change flushes through the harness's [on_view]. *)
  rejoin h group cs.Membership.basic;
  Alcotest.(check int) "resumed at quorum" 1 !resumed;
  Alcotest.(check bool) "defer counted" true
    (Sim.Stats.count h.stats "durable.probation_defers" >= 1)

let test_dead_issuer_not_resumed () =
  let h = make ~lambda:1 () in
  Membership.enable_probation h.mem;
  let cs, _ = ensure h "t" in
  let group = cs.Membership.group in
  let issuer =
    List.find (fun m -> not (List.mem m cs.Membership.basic)) [ 0; 1; 2; 3; 4; 5 ]
  in
  crash_members h group;
  let resumed = ref 0 in
  Membership.defer_probation h.mem ~machine:issuer ~group (fun () -> incr resumed);
  Vsync.crash h.vs ~node:issuer;
  rejoin h group cs.Membership.basic;
  Alcotest.(check int) "parked op died with its issuer" 0 !resumed

let test_schedule_rejoin () =
  let h = make ~lambda:1 () in
  let cs, _ = ensure h "t" in
  let machine = List.hd cs.Membership.basic in
  Vsync.crash h.vs ~node:machine;
  Sim.Engine.run h.eng;
  Alcotest.(check bool) "left the group" false
    (List.mem machine (Vsync.members h.vs ~group:cs.Membership.group));
  Vsync.recover h.vs ~node:machine;
  Membership.schedule_rejoin h.mem ~machine ~delay:10.0;
  Sim.Engine.run h.eng;
  Alcotest.(check bool) "rejoined its basic-support group" true
    (List.mem machine (Vsync.members h.vs ~group:cs.Membership.group))

let () =
  Alcotest.run "membership"
    [
      ( "placement",
        [
          Alcotest.test_case "ensure places lambda+1 support" `Quick test_ensure_support;
          Alcotest.test_case "write group tracks views" `Quick
            test_write_group_tracks_views;
        ] );
      ( "probation",
        [
          Alcotest.test_case "gated by durability" `Quick
            test_probation_gated_by_durability;
          Alcotest.test_case "lifts at quorum" `Quick test_probation_lifts_at_quorum;
          Alcotest.test_case "generation counts losses" `Quick
            test_generation_counts_losses;
          Alcotest.test_case "straddle guard" `Quick test_straddle_guard;
          Alcotest.test_case "token tracks mutations (batching-independent)" `Quick
            test_token_tracks_mutations;
          Alcotest.test_case "fresh guard: mutation and view" `Quick
            test_fresh_guard_mutation_and_view;
          Alcotest.test_case "fresh guard: probation" `Quick test_fresh_guard_probation;
          Alcotest.test_case "defer and flush" `Quick test_defer_and_flush;
          Alcotest.test_case "dead issuer not resumed" `Quick
            test_dead_issuer_not_resumed;
          Alcotest.test_case "schedule_rejoin" `Quick test_schedule_rejoin;
        ] );
    ]
