(* Equivalence properties for the PR's hot-path optimisations: the
   memoised sc-list must be observationally identical to a fresh
   derivation, the unboxed event heap must behave exactly like a naive
   sorted list, and the trace ring's truncation must keep the exact
   window the original cons-list implementation kept (the replay
   digest depends on it). *)

open Paso

let vi i = Value.Int i
let vs s = Value.Sym s

let strategies =
  [
    ("single", Obj_class.Single_class);
    ("arity", Obj_class.By_arity);
    ("head", Obj_class.By_head);
    ("signature", Obj_class.By_signature);
  ]

(* ------------------------------------------------------------------ *)
(* Memoised sc-list ≡ uncached derivation                              *)
(* ------------------------------------------------------------------ *)

(* Small pools keep collisions (and therefore cache hits and shared
   classes) frequent. *)
let gen_value =
  QCheck2.Gen.(
    oneof
      [
        map (fun i -> Value.Int i) (int_bound 4);
        map (fun i -> Value.Sym (Printf.sprintf "s%d" i)) (int_bound 2);
        map (fun b -> Value.Bool b) bool;
        oneofl [ Value.Float 1.5; Value.Float 2.5 ];
        return (Value.Str "x");
      ])

let gen_fields = QCheck2.Gen.(list_size (int_range 1 3) gen_value)

let gen_spec =
  QCheck2.Gen.(
    frequency
      [
        (3, return Template.Any);
        (4, map (fun v -> Template.Eq v) gen_value);
        ( 2,
          map (fun ty -> Template.Type_is ty)
            (oneofl [ "int"; "sym"; "bool"; "float"; "str" ]) );
        ( 2,
          map
            (fun (a, b) -> Template.Range (vi (min a b), vi (max a b)))
            (pair (int_bound 4) (int_bound 4)) );
        (* Uncacheable spec: exercises the cache-bypass path. *)
        ( 1,
          return
            (Template.Pred
               ( "even",
                 fun v ->
                   match v with Value.Int i -> i mod 2 = 0 | _ -> false )) );
      ])

type step = Register of Value.t list | Query of Template.field_spec list

let gen_steps =
  QCheck2.Gen.(
    list_size (int_range 1 25)
      (oneof
         [
           map (fun fs -> Register fs) gen_fields;
           map (fun ss -> Query ss) (list_size (int_range 1 3) gen_spec);
         ]))

(* Interleave class registrations (inserts discover classes and must
   invalidate the cache) with queries; every query is answered twice so
   both the miss path and the hit path are compared against a fresh
   [Obj_class.sc_list] over the current universe. *)
let prop_sc_list_equiv strategy_name strategy =
  QCheck2.Test.make
    ~name:(Printf.sprintf "memoised sc_list = fresh derivation (%s)" strategy_name)
    ~count:200 gen_steps
    (fun steps ->
      let cfg =
        { System.default_config with n = 4; lambda = 1; classing = strategy }
      in
      let sys = System.create cfg in
      List.iter
        (function
          | Register fields ->
              System.insert sys ~machine:0 fields ~on_done:(fun () -> ());
              System.run sys
          | Query specs ->
              let tmpl = Template.make specs in
              let fresh () =
                Obj_class.sc_list strategy
                  ~universe:(System.known_classes sys)
                  tmpl
              in
              let memo = System.sc_list sys tmpl in
              if memo <> fresh () then
                QCheck2.Test.fail_reportf
                  "miss-path mismatch: memo=[%s] fresh=[%s]"
                  (String.concat ";" memo)
                  (String.concat ";" (fresh ()));
              let again = System.sc_list sys tmpl in
              if again <> fresh () then
                QCheck2.Test.fail_reportf
                  "hit-path mismatch: memo=[%s] fresh=[%s]"
                  (String.concat ";" again)
                  (String.concat ";" (fresh ())))
        steps;
      true)

(* ------------------------------------------------------------------ *)
(* Event heap ≡ naive sorted list                                      *)
(* ------------------------------------------------------------------ *)

type heap_cmd = Add of int | Pop | Cancel of int

let gen_heap_cmds =
  QCheck2.Gen.(
    list_size (int_range 1 300)
      (frequency
         [
           (5, map (fun t -> Add t) (int_bound 20));
           (3, return Pop);
           (2, map (fun k -> Cancel k) (int_bound 1000));
         ]))

(* Model: pending events as a list of (time, counter, payload), popped
   by minimal (time, counter) — times tie constantly (int_bound 20), so
   this checks FIFO tie-breaking too. Cancels pick a still-pending
   event, mirroring the engine's use (cancel of a fired event is a
   separate unit test in test_sim). *)
let prop_heap_model =
  QCheck2.Test.make ~name:"event heap = sorted-list model" ~count:300
    gen_heap_cmds
    (fun cmds ->
      let h = Sim.Event_heap.create () in
      let model = ref [] (* (time, counter, id), unsorted *) in
      let counter = ref 0 in
      let model_min () =
        List.fold_left
          (fun best (t, c, id) ->
            match best with
            | Some (bt, bc, _) when (bt, bc) <= (t, c) -> best
            | _ -> Some (t, c, id))
          None !model
      in
      let check_pop () =
        let expected = model_min () in
        (match (Sim.Event_heap.pop h, expected) with
        | None, None -> ()
        | Some (time, payload), Some (et, ec, _) ->
            if time <> et || payload <> ec then
              QCheck2.Test.fail_reportf
                "pop mismatch: got (%g,%d) want (%g,%d)" time payload et ec
        | Some (time, payload), None ->
            QCheck2.Test.fail_reportf "pop returned (%g,%d) on empty model"
              time payload
        | None, Some (et, ec, _) ->
            QCheck2.Test.fail_reportf "pop empty, model has (%g,%d)" et ec);
        match expected with
        | Some (t, c, _) -> model := List.filter (fun (_, c', _) -> c' <> c) !model;
            ignore (t, c)
        | None -> ()
      in
      List.iter
        (fun cmd ->
          (match cmd with
          | Add t ->
              let c = !counter in
              incr counter;
              let id = Sim.Event_heap.add h ~time:(float_of_int t) c in
              model := (float_of_int t, c, id) :: !model
          | Pop -> check_pop ()
          | Cancel k -> (
              match !model with
              | [] -> ()
              | l ->
                  let t, c, id = List.nth l (k mod List.length l) in
                  Sim.Event_heap.cancel h id;
                  model := List.filter (fun (_, c', _) -> c' <> c) !model;
                  ignore t;
                  (* Compaction runs from cancel: right after one, the
                     tombstone count is bounded by half the physical
                     heap (or the 64-entry floor). *)
                  let tb = Sim.Event_heap.tombstones h in
                  let len = Sim.Event_heap.size h + tb in
                  if tb > max 64 (len / 2) then
                    QCheck2.Test.fail_reportf
                      "tombstones unbounded after cancel: %d of %d" tb len));
          if Sim.Event_heap.size h <> List.length !model then
            QCheck2.Test.fail_reportf "size drift: heap %d, model %d"
              (Sim.Event_heap.size h) (List.length !model))
        cmds;
      (* Drain: the full remaining pop sequence must match the model. *)
      while not (Sim.Event_heap.is_empty h) do
        check_pop ()
      done;
      if !model <> [] then
        QCheck2.Test.fail_reportf "heap empty but model has %d left"
          (List.length !model);
      true)

(* Mass cancellation compacts rather than accumulating garbage, and the
   survivors still pop in order. *)
let test_heap_mass_cancel () =
  let h = Sim.Event_heap.create () in
  let ids =
    List.init 500 (fun i -> (i, Sim.Event_heap.add h ~time:(float_of_int i) i))
  in
  List.iter
    (fun (i, id) -> if i mod 5 <> 0 then Sim.Event_heap.cancel h id)
    ids;
  let tb = Sim.Event_heap.tombstones h in
  let len = Sim.Event_heap.size h + tb in
  Alcotest.(check bool) "tombstones bounded" true (tb <= max 64 (len / 2));
  Alcotest.(check int) "live count" 100 (Sim.Event_heap.size h);
  let popped = ref [] in
  let rec drain () =
    match Sim.Event_heap.pop h with
    | Some (_, p) ->
        popped := p :: !popped;
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list int)) "survivors in order"
    (List.init 100 (fun i -> i * 5))
    (List.rev !popped)

(* ------------------------------------------------------------------ *)
(* Trace truncation keeps the exact original window                    *)
(* ------------------------------------------------------------------ *)

(* The cons-list original dropped to the newest [capacity/2] records
   whenever length exceeded capacity. With capacity 10, emits 1..25
   truncate at 11 (keeping 7..11), at 17 (keeping 13..17) and at 23
   (keeping 19..23); 24 and 25 then append. Replay digests hash the
   retained window, so the array rewrite must reproduce it exactly. *)
let test_trace_retention_window () =
  let tr = Sim.Trace.create ~capacity:10 () in
  Sim.Trace.enable tr;
  for i = 1 to 25 do
    Sim.Trace.emit tr ~time:(float_of_int i) ~tag:"t" (string_of_int i)
  done;
  let msgs =
    List.map (fun r -> r.Sim.Trace.message) (Sim.Trace.records tr)
  in
  Alcotest.(check (list string))
    "exact retained window"
    [ "19"; "20"; "21"; "22"; "23"; "24"; "25" ]
    msgs;
  Alcotest.(check int) "length agrees" 7 (Sim.Trace.length tr)

(* Cache introspection: hits and misses land in the stats the paper's
   tables read, and registration of a new class invalidates. *)
let test_sc_cache_counters () =
  let cfg = { System.default_config with n = 4; lambda = 1 } in
  let sys = System.create cfg in
  System.insert sys ~machine:0 [ vs "job"; vi 1 ] ~on_done:(fun () -> ());
  System.run sys;
  let tmpl = Template.make [ Template.Eq (vs "job"); Template.Any ] in
  ignore (System.sc_list sys tmpl);
  ignore (System.sc_list sys tmpl);
  ignore (System.sc_list sys tmpl);
  let get k = Sim.Stats.count (System.stats sys) k in
  Alcotest.(check bool) "misses counted" true (get "cache.sc_misses" >= 1);
  Alcotest.(check bool) "hits counted" true (get "cache.sc_hits" >= 2);
  (* Registering a class with a new head invalidates the cache: the
     next lookup misses again but still agrees with a fresh derive. *)
  System.insert sys ~machine:1 [ vs "task"; vi 2 ] ~on_done:(fun () -> ());
  System.run sys;
  let misses_before = get "cache.sc_misses" in
  let memo = System.sc_list sys tmpl in
  let fresh =
    Obj_class.sc_list cfg.System.classing
      ~universe:(System.known_classes sys)
      tmpl
  in
  Alcotest.(check (list string)) "post-invalidation agreement" fresh memo;
  Alcotest.(check bool) "invalidation caused a miss" true
    (get "cache.sc_misses" > misses_before)

let () =
  Alcotest.run "perf_equiv"
    [
      ( "sc_cache",
        Alcotest.test_case "hit/miss counters + invalidation" `Quick
          test_sc_cache_counters
        :: List.map
             (fun (name, s) ->
               QCheck_alcotest.to_alcotest (prop_sc_list_equiv name s))
             strategies );
      ( "event_heap",
        [
          QCheck_alcotest.to_alcotest prop_heap_model;
          Alcotest.test_case "mass cancel compacts" `Quick
            test_heap_mass_cancel;
        ] );
      ( "trace",
        [
          Alcotest.test_case "truncation window pinned" `Quick
            test_trace_retention_window;
        ] );
    ]
