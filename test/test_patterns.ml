(* Tests for the coordination-pattern library: counters, semaphores,
   barriers, channels — each exercised concurrently from many machines,
   with the §2 semantics checker run over every scenario. *)

open Paso

let make ?(n = 8) ?(lambda = 2) () =
  System.create { System.default_config with n; lambda }

let check_clean sys =
  Alcotest.(check int) "semantics clean" 0
    (List.length (Semantics.check (System.history sys)))

(* --- Shared_counter ---------------------------------------------------------- *)

let test_counter_concurrent_increments () =
  let sys = make () in
  let finished = ref 0 in
  Patterns.Shared_counter.create sys ~name:"hits" ~machine:0 () ~on_done:(fun c ->
      (* 12 increments racing from different machines. *)
      for i = 1 to 12 do
        Patterns.Shared_counter.add c ~machine:(i mod 8) ~delta:1
          ~on_done:(fun _ -> incr finished)
      done);
  System.run sys;
  Alcotest.(check int) "all increments done" 12 !finished;
  let final = ref (-1) in
  Patterns.Shared_counter.get
    (Patterns.Shared_counter.handle sys ~name:"hits")
    ~machine:3
    ~on_done:(fun v -> final := v);
  System.run sys;
  Alcotest.(check int) "no lost update" 12 !final;
  check_clean sys

let test_counter_observed_values_unique () =
  let sys = make () in
  let seen = ref [] in
  Patterns.Shared_counter.create sys ~name:"c" ~machine:0 ~initial:100 ()
    ~on_done:(fun c ->
      for i = 1 to 10 do
        Patterns.Shared_counter.add c ~machine:(i mod 8) ~delta:1
          ~on_done:(fun v -> seen := v :: !seen)
      done);
  System.run sys;
  let sorted = List.sort_uniq compare !seen in
  Alcotest.(check int) "10 distinct values" 10 (List.length sorted);
  Alcotest.(check (list int)) "values are 101..110" (List.init 10 (fun i -> 101 + i)) sorted

let test_counter_negative_delta () =
  let sys = make () in
  let final = ref 0 in
  Patterns.Shared_counter.create sys ~name:"c" ~machine:0 ~initial:10 ()
    ~on_done:(fun c ->
      Patterns.Shared_counter.add c ~machine:1 ~delta:(-4) ~on_done:(fun v -> final := v));
  System.run sys;
  Alcotest.(check int) "decrement" 6 !final

(* --- Semaphore ---------------------------------------------------------------- *)

let test_semaphore_limits_concurrency () =
  let sys = make () in
  let holding = ref 0 and peak = ref 0 and completed = ref 0 in
  Patterns.Semaphore.create sys ~name:"s" ~machine:0 ~permits:2 ~on_done:(fun sem ->
      for i = 1 to 6 do
        Patterns.Semaphore.acquire sem ~machine:(i mod 8) ~on_done:(fun () ->
            incr holding;
            peak := max !peak !holding;
            (* Hold the permit for a while, then release. *)
            ignore
              (Sim.Engine.schedule (System.engine sys) ~delay:50000.0 (fun () ->
                   decr holding;
                   incr completed;
                   Patterns.Semaphore.release sem ~machine:(i mod 8)
                     ~on_done:(fun () -> ()))))
      done);
  System.run sys;
  Alcotest.(check int) "all six critical sections ran" 6 !completed;
  Alcotest.(check bool) (Printf.sprintf "peak %d <= 2" !peak) true (!peak <= 2);
  check_clean sys

let test_semaphore_try_acquire () =
  let sys = make () in
  let results = ref [] in
  Patterns.Semaphore.create sys ~name:"s" ~machine:0 ~permits:1 ~on_done:(fun sem ->
      Patterns.Semaphore.try_acquire sem ~machine:1 ~on_done:(fun ok ->
          results := ok :: !results;
          Patterns.Semaphore.try_acquire sem ~machine:2 ~on_done:(fun ok ->
              results := ok :: !results)));
  System.run sys;
  Alcotest.(check (list bool)) "first wins, second fails" [ false; true ] !results

let test_semaphore_validation () =
  let sys = make () in
  Alcotest.check_raises "zero permits" (Invalid_argument "Semaphore.create: permits < 1")
    (fun () ->
      Patterns.Semaphore.create sys ~name:"s" ~machine:0 ~permits:0
        ~on_done:(fun _ -> ()))

(* --- Barrier ------------------------------------------------------------------- *)

let test_barrier_releases_together () =
  let sys = make () in
  let released = ref 0 in
  Patterns.Barrier.create sys ~name:"b" ~machine:0 ~parties:4 ~on_done:(fun b ->
      for m = 1 to 3 do
        Patterns.Barrier.wait b ~machine:m ~on_done:(fun () -> incr released)
      done);
  System.run sys;
  Alcotest.(check int) "three of four arrived: nobody through" 0 !released;
  Patterns.Barrier.wait
    (Patterns.Barrier.handle sys ~name:"b" ~parties:4)
    ~machine:4
    ~on_done:(fun () -> incr released);
  System.run sys;
  Alcotest.(check int) "fourth arrival releases all" 4 !released;
  check_clean sys

let test_barrier_is_cyclic () =
  let sys = make () in
  let rounds = Array.make 3 0 in
  Patterns.Barrier.create sys ~name:"b" ~machine:0 ~parties:2 ~on_done:(fun b ->
      (* Two parties cross the barrier three times in lockstep. *)
      let rec party m round =
        if round < 3 then
          Patterns.Barrier.wait b ~machine:m ~on_done:(fun () ->
              rounds.(round) <- rounds.(round) + 1;
              party m (round + 1))
      in
      party 1 0;
      party 2 0);
  System.run sys;
  Alcotest.(check (array int)) "each generation crossed by both" [| 2; 2; 2 |] rounds

(* --- Channel ------------------------------------------------------------------- *)

let test_channel_in_order () =
  let sys = make () in
  let got = ref [] in
  Patterns.Channel.create sys ~name:"ch" ~machine:0 ~on_done:(fun ch ->
      (* One producer on machine 1, one consumer on machine 5. *)
      let rec produce i =
        if i <= 5 then
          Patterns.Channel.send ch ~machine:1 (Value.Int i) ~on_done:(fun () ->
              produce (i + 1))
      in
      let rec consume k =
        if k <= 5 then
          Patterns.Channel.recv ch ~machine:5 ~on_done:(fun v ->
              got := v :: !got;
              consume (k + 1))
      in
      produce 1;
      consume 1);
  System.run sys;
  Alcotest.(check (list int)) "FIFO across machines"
    [ 1; 2; 3; 4; 5 ]
    (List.rev_map (function Value.Int i -> i | _ -> -1) !got);
  check_clean sys

let test_channel_multiple_consumers_exactly_once () =
  let sys = make () in
  let got = ref [] in
  Patterns.Channel.create sys ~name:"ch" ~machine:0 ~on_done:(fun ch ->
      List.iter
        (fun i -> Patterns.Channel.send ch ~machine:0 (Value.Int i) ~on_done:(fun () -> ()))
        [ 10; 20; 30; 40 ];
      (* Four consumers on different machines race. *)
      for m = 1 to 4 do
        Patterns.Channel.recv ch ~machine:m ~on_done:(fun v -> got := v :: !got)
      done);
  System.run sys;
  let values = List.sort compare (List.map (function Value.Int i -> i | _ -> -1) !got) in
  Alcotest.(check (list int)) "each item delivered exactly once" [ 10; 20; 30; 40 ] values;
  check_clean sys

let test_channel_consumer_blocks_until_send () =
  let sys = make () in
  let got = ref None in
  Patterns.Channel.create sys ~name:"ch" ~machine:0 ~on_done:(fun ch ->
      Patterns.Channel.recv ch ~machine:2 ~on_done:(fun v -> got := Some v));
  System.run sys;
  Alcotest.(check bool) "blocked on empty channel" true (!got = None);
  Patterns.Channel.send
    (Patterns.Channel.handle sys ~name:"ch")
    ~machine:3 (Value.Str "late") ~on_done:(fun () -> ());
  System.run sys;
  Alcotest.(check bool) "woken by send" true (!got = Some (Value.Str "late"))

let test_channel_length () =
  let sys = make () in
  let len = ref (-1) in
  Patterns.Channel.create sys ~name:"ch" ~machine:0 ~on_done:(fun ch ->
      Patterns.Channel.send ch ~machine:1 (Value.Int 1) ~on_done:(fun () ->
          Patterns.Channel.send ch ~machine:1 (Value.Int 2) ~on_done:(fun () ->
              Patterns.Channel.recv ch ~machine:2 ~on_done:(fun _ ->
                  Patterns.Channel.length ch ~machine:3 ~on_done:(fun l -> len := l)))));
  System.run sys;
  Alcotest.(check int) "2 sent - 1 received" 1 !len

(* --- patterns under faults ------------------------------------------------------ *)

let test_counter_survives_crashes () =
  let sys = make ~n:8 ~lambda:2 () in
  let final = ref (-1) in
  Patterns.Shared_counter.create sys ~name:"c" ~machine:0 () ~on_done:(fun c ->
      let rec step i =
        if i <= 6 then begin
          let up = List.filter (System.is_up sys) (List.init 8 Fun.id) in
          let m = List.nth up (i mod List.length up) in
          Patterns.Shared_counter.add c ~machine:m ~delta:1 ~on_done:(fun v ->
              if i = 3 then begin
                (* Crash a machine mid-sequence; the counter tuple is
                   replicated and survives. *)
                let victim =
                  List.find (fun x -> x <> m && System.is_up sys x) (List.init 8 Fun.id)
                in
                System.crash sys ~machine:victim
              end;
              if i = 6 then final := v;
              step (i + 1))
        end
      in
      step 1);
  System.run sys;
  Alcotest.(check int) "six increments despite a crash" 6 !final;
  check_clean sys

let () =
  Alcotest.run "patterns"
    [
      ( "shared_counter",
        [
          Alcotest.test_case "concurrent increments" `Quick test_counter_concurrent_increments;
          Alcotest.test_case "observed values unique" `Quick
            test_counter_observed_values_unique;
          Alcotest.test_case "negative delta" `Quick test_counter_negative_delta;
          Alcotest.test_case "survives crashes" `Quick test_counter_survives_crashes;
        ] );
      ( "semaphore",
        [
          Alcotest.test_case "limits concurrency" `Quick test_semaphore_limits_concurrency;
          Alcotest.test_case "try_acquire" `Quick test_semaphore_try_acquire;
          Alcotest.test_case "validation" `Quick test_semaphore_validation;
        ] );
      ( "barrier",
        [
          Alcotest.test_case "releases together" `Quick test_barrier_releases_together;
          Alcotest.test_case "cyclic generations" `Quick test_barrier_is_cyclic;
        ] );
      ( "channel",
        [
          Alcotest.test_case "in order across machines" `Quick test_channel_in_order;
          Alcotest.test_case "exactly-once to racing consumers" `Quick
            test_channel_multiple_consumers_exactly_once;
          Alcotest.test_case "consumer blocks until send" `Quick
            test_channel_consumer_blocks_until_send;
          Alcotest.test_case "length" `Quick test_channel_length;
        ] );
    ]
