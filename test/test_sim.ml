(* Tests for the discrete-event simulation substrate. *)

let check_float = Alcotest.(check (float 1e-9))

(* --- Event_heap --------------------------------------------------------- *)

let test_heap_order () =
  let h = Sim.Event_heap.create () in
  ignore (Sim.Event_heap.add h ~time:3.0 "c");
  ignore (Sim.Event_heap.add h ~time:1.0 "a");
  ignore (Sim.Event_heap.add h ~time:2.0 "b");
  let pop () = Option.get (Sim.Event_heap.pop h) in
  Alcotest.(check (pair (float 0.0) string)) "first" (1.0, "a") (pop ());
  Alcotest.(check (pair (float 0.0) string)) "second" (2.0, "b") (pop ());
  Alcotest.(check (pair (float 0.0) string)) "third" (3.0, "c") (pop ());
  Alcotest.(check bool) "empty" true (Sim.Event_heap.pop h = None)

let test_heap_fifo_ties () =
  let h = Sim.Event_heap.create () in
  for i = 0 to 9 do
    ignore (Sim.Event_heap.add h ~time:5.0 i)
  done;
  let order = List.init 10 (fun _ -> snd (Option.get (Sim.Event_heap.pop h))) in
  Alcotest.(check (list int)) "insertion order on ties" (List.init 10 Fun.id) order

let test_heap_cancel () =
  let h = Sim.Event_heap.create () in
  let a = Sim.Event_heap.add h ~time:1.0 "a" in
  let b = Sim.Event_heap.add h ~time:2.0 "b" in
  ignore b;
  Sim.Event_heap.cancel h a;
  Alcotest.(check int) "size after cancel" 1 (Sim.Event_heap.size h);
  Alcotest.(check (option (pair (float 0.0) string)))
    "cancelled skipped" (Some (2.0, "b")) (Sim.Event_heap.pop h);
  Sim.Event_heap.cancel h a (* double-cancel is a no-op *)

let test_heap_cancel_then_peek () =
  let h = Sim.Event_heap.create () in
  let a = Sim.Event_heap.add h ~time:1.0 "a" in
  ignore (Sim.Event_heap.add h ~time:2.0 "b");
  Sim.Event_heap.cancel h a;
  Alcotest.(check (option (float 0.0))) "peek skips cancelled" (Some 2.0)
    (Sim.Event_heap.peek_time h)

let test_heap_growth () =
  let h = Sim.Event_heap.create () in
  for i = 999 downto 0 do
    ignore (Sim.Event_heap.add h ~time:(float_of_int i) i)
  done;
  let sorted = ref true in
  let prev = ref neg_infinity in
  for _ = 1 to 1000 do
    let time, _ = Option.get (Sim.Event_heap.pop h) in
    if time < !prev then sorted := false;
    prev := time
  done;
  Alcotest.(check bool) "1000 events pop sorted" true !sorted

let test_heap_nan_rejected () =
  let h = Sim.Event_heap.create () in
  Alcotest.check_raises "NaN time" (Invalid_argument "Event_heap.add: NaN time")
    (fun () -> ignore (Sim.Event_heap.add h ~time:Float.nan ()))

(* --- Engine -------------------------------------------------------------- *)

let test_engine_runs_in_order () =
  let eng = Sim.Engine.create () in
  let log = ref [] in
  ignore (Sim.Engine.schedule eng ~delay:2.0 (fun () -> log := "b" :: !log));
  ignore (Sim.Engine.schedule eng ~delay:1.0 (fun () -> log := "a" :: !log));
  Sim.Engine.run eng;
  Alcotest.(check (list string)) "execution order" [ "a"; "b" ] (List.rev !log);
  check_float "clock at last event" 2.0 (Sim.Engine.now eng)

let test_engine_nested_schedule () =
  let eng = Sim.Engine.create () in
  let fired_at = ref 0.0 in
  ignore
    (Sim.Engine.schedule eng ~delay:1.0 (fun () ->
         ignore (Sim.Engine.schedule eng ~delay:1.5 (fun () -> fired_at := Sim.Engine.now eng))));
  Sim.Engine.run eng;
  check_float "nested event at issue+delay" 2.5 !fired_at

let test_engine_run_until () =
  let eng = Sim.Engine.create () in
  let count = ref 0 in
  for i = 1 to 10 do
    ignore (Sim.Engine.schedule eng ~delay:(float_of_int i) (fun () -> incr count))
  done;
  Sim.Engine.run_until eng 5.0;
  Alcotest.(check int) "events up to horizon" 5 !count;
  check_float "clock advanced to horizon" 5.0 (Sim.Engine.now eng);
  Sim.Engine.run eng;
  Alcotest.(check int) "remaining events" 10 !count

let test_engine_cancel () =
  let eng = Sim.Engine.create () in
  let fired = ref false in
  let id = Sim.Engine.schedule eng ~delay:1.0 (fun () -> fired := true) in
  Sim.Engine.cancel eng id;
  Sim.Engine.run eng;
  Alcotest.(check bool) "cancelled event does not fire" false !fired

let test_engine_negative_delay () =
  let eng = Sim.Engine.create () in
  Alcotest.check_raises "negative delay"
    (Invalid_argument "Engine.schedule: negative delay") (fun () ->
      ignore (Sim.Engine.schedule eng ~delay:(-1.0) (fun () -> ())))

let test_engine_counts () =
  let eng = Sim.Engine.create () in
  ignore (Sim.Engine.schedule eng ~delay:1.0 (fun () -> ()));
  ignore (Sim.Engine.schedule eng ~delay:2.0 (fun () -> ()));
  Alcotest.(check int) "pending" 2 (Sim.Engine.pending eng);
  Sim.Engine.run eng;
  Alcotest.(check int) "executed" 2 (Sim.Engine.events_executed eng);
  Alcotest.(check int) "none pending" 0 (Sim.Engine.pending eng)

(* --- Rng ----------------------------------------------------------------- *)

let test_rng_deterministic () =
  let a = Sim.Rng.make 7 and b = Sim.Rng.make 7 in
  let xs = List.init 20 (fun _ -> Sim.Rng.int a 1000) in
  let ys = List.init 20 (fun _ -> Sim.Rng.int b 1000) in
  Alcotest.(check (list int)) "same seed, same stream" xs ys

let test_rng_bounds () =
  let r = Sim.Rng.make 13 in
  for _ = 1 to 1000 do
    let v = Sim.Rng.int r 17 in
    Alcotest.(check bool) "in [0,17)" true (v >= 0 && v < 17);
    let w = Sim.Rng.int_in r 5 9 in
    Alcotest.(check bool) "in [5,9]" true (w >= 5 && w <= 9);
    let f = Sim.Rng.float r 2.5 in
    Alcotest.(check bool) "in [0,2.5)" true (f >= 0.0 && f < 2.5)
  done

let test_rng_split_independent () =
  let r = Sim.Rng.make 99 in
  let s = Sim.Rng.split r in
  let xs = List.init 10 (fun _ -> Sim.Rng.int r 1000000) in
  let ys = List.init 10 (fun _ -> Sim.Rng.int s 1000000) in
  Alcotest.(check bool) "streams differ" true (xs <> ys)

let test_rng_exponential_mean () =
  let r = Sim.Rng.make 4242 in
  let n = 20000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Sim.Rng.exponential r ~mean:10.0
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "empirical mean near 10" true (mean > 9.0 && mean < 11.0)

let test_rng_shuffle_permutation () =
  let r = Sim.Rng.make 5 in
  let arr = Array.init 50 Fun.id in
  Sim.Rng.shuffle r arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "shuffle is a permutation" (Array.init 50 Fun.id) sorted

let test_rng_zero_bound () =
  let r = Sim.Rng.make 1 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound <= 0") (fun () ->
      ignore (Sim.Rng.int r 0))

(* --- Stats --------------------------------------------------------------- *)

let test_stats_counters () =
  let s = Sim.Stats.create () in
  Sim.Stats.incr s "x";
  Sim.Stats.incr s "x";
  Sim.Stats.add s "y" 1.5;
  Sim.Stats.add s "y" 2.5;
  Alcotest.(check int) "counter" 2 (Sim.Stats.count s "x");
  check_float "total" 4.0 (Sim.Stats.total s "y");
  Alcotest.(check int) "missing counter" 0 (Sim.Stats.count s "zzz")

let test_stats_distribution () =
  let s = Sim.Stats.create () in
  List.iter (Sim.Stats.observe s "d") [ 1.0; 2.0; 3.0; 4.0 ];
  check_float "mean" 2.5 (Option.get (Sim.Stats.mean s "d"));
  check_float "max" 4.0 (Option.get (Sim.Stats.max_sample s "d"));
  check_float "min" 1.0 (Option.get (Sim.Stats.min_sample s "d"));
  check_float "median" 2.0 (Option.get (Sim.Stats.percentile s "d" 50.0));
  Alcotest.(check int) "samples" 4 (Sim.Stats.samples s "d")

let test_stats_reset_and_keys () =
  let s = Sim.Stats.create () in
  Sim.Stats.incr s "b";
  Sim.Stats.add s "a" 1.0;
  Sim.Stats.observe s "c" 2.0;
  Alcotest.(check (list string)) "keys sorted" [ "a"; "b"; "c" ] (Sim.Stats.keys s);
  Sim.Stats.reset s;
  Alcotest.(check (list string)) "empty after reset" [] (Sim.Stats.keys s)

(* --- Pending ------------------------------------------------------------- *)

let test_pending_fifo () =
  let q = Sim.Pending.create () in
  let ids = List.init 5 (fun i -> Sim.Pending.push q i) in
  Alcotest.(check int) "length" 5 (Sim.Pending.length q);
  Sim.Pending.cancel q (List.nth ids 2);
  Alcotest.(check int) "length after cancel" 4 (Sim.Pending.length q);
  let seen = ref [] in
  Sim.Pending.drain q (fun _ x -> seen := x :: !seen);
  Alcotest.(check (list int)) "FIFO, cancelled skipped" [ 0; 1; 3; 4 ]
    (List.rev !seen);
  Alcotest.(check bool) "empty after drain" true (Sim.Pending.is_empty q);
  Alcotest.(check int) "graveyard emptied" 0 (Sim.Pending.tombstones q)

let test_pending_iter_preserves () =
  let q = Sim.Pending.create () in
  let a = Sim.Pending.push q "a" in
  ignore (Sim.Pending.push q "b");
  Sim.Pending.cancel q a;
  Sim.Pending.cancel q a (* double cancel is a no-op *);
  let seen = ref [] in
  Sim.Pending.iter q (fun _ x -> seen := x :: !seen);
  Alcotest.(check (list string)) "iter skips dead" [ "b" ] !seen;
  Alcotest.(check int) "iter does not consume" 1 (Sim.Pending.length q)

(* The bounded-tombstone invariant, directly: however adversarial the
   cancellation pattern, the graveyard never outgrows
   [max floor (len/2)] once a cancel has had the chance to sweep. *)
let test_pending_tombstones_bounded () =
  let q = Sim.Pending.create ~floor:8 () in
  let ids = Array.init 1000 (fun i -> Sim.Pending.push q i) in
  Array.iteri (fun i id -> if i mod 4 <> 0 then Sim.Pending.cancel q id) ids;
  let live = Sim.Pending.length q in
  let tb = Sim.Pending.tombstones q in
  Alcotest.(check int) "live count" 250 live;
  Alcotest.(check bool) "tombstones bounded" true (tb <= max 8 ((live + tb) / 2));
  let seen = ref 0 in
  Sim.Pending.drain q (fun _ _ -> incr seen);
  Alcotest.(check int) "survivors drained" 250 !seen

(* Same invariant on the event heap, which shares the graveyard sweep
   rule — previously only exercised indirectly through the QCheck
   model test in test_perf_equiv. *)
let test_heap_tombstones_bounded () =
  let h = Sim.Event_heap.create () in
  let ids =
    Array.init 2000 (fun i -> Sim.Event_heap.add h ~time:(float_of_int i) i)
  in
  Array.iteri (fun i id -> if i mod 3 <> 0 then Sim.Event_heap.cancel h id) ids;
  let tb = Sim.Event_heap.tombstones h in
  let len = Sim.Event_heap.size h + tb in
  Alcotest.(check bool) "tombstones bounded" true (tb <= max 64 (len / 2));
  Alcotest.(check int) "live count" 667 (Sim.Event_heap.size h)

(* --- Trace --------------------------------------------------------------- *)

let test_trace_disabled_by_default () =
  let tr = Sim.Trace.create () in
  Sim.Trace.emit tr ~time:1.0 ~tag:"t" "hello";
  Alcotest.(check int) "nothing recorded" 0 (Sim.Trace.length tr)

let test_trace_records () =
  let tr = Sim.Trace.create () in
  Sim.Trace.enable tr;
  Sim.Trace.emit tr ~time:1.0 ~tag:"a" "one";
  Sim.Trace.emitf tr ~time:2.0 ~tag:"b" "two %d" 2;
  let recs = Sim.Trace.records tr in
  Alcotest.(check int) "two records" 2 (List.length recs);
  Alcotest.(check string) "formatted" "two 2" (List.nth recs 1).Sim.Trace.message

let test_trace_capacity () =
  let tr = Sim.Trace.create ~capacity:10 () in
  Sim.Trace.enable tr;
  for i = 1 to 25 do
    Sim.Trace.emit tr ~time:(float_of_int i) ~tag:"t" (string_of_int i)
  done;
  Alcotest.(check bool) "bounded" true (Sim.Trace.length tr <= 25);
  let recs = Sim.Trace.records tr in
  let last = List.nth recs (List.length recs - 1) in
  Alcotest.(check string) "newest retained" "25" last.Sim.Trace.message

let () =
  Alcotest.run "sim"
    [
      ( "event_heap",
        [
          Alcotest.test_case "pops in time order" `Quick test_heap_order;
          Alcotest.test_case "FIFO on equal times" `Quick test_heap_fifo_ties;
          Alcotest.test_case "cancellation" `Quick test_heap_cancel;
          Alcotest.test_case "peek skips cancelled" `Quick test_heap_cancel_then_peek;
          Alcotest.test_case "growth to 1000 events" `Quick test_heap_growth;
          Alcotest.test_case "rejects NaN" `Quick test_heap_nan_rejected;
          Alcotest.test_case "tombstones bounded" `Quick
            test_heap_tombstones_bounded;
        ] );
      ( "pending",
        [
          Alcotest.test_case "FIFO with lazy cancel" `Quick test_pending_fifo;
          Alcotest.test_case "iter preserves entries" `Quick
            test_pending_iter_preserves;
          Alcotest.test_case "tombstones bounded" `Quick
            test_pending_tombstones_bounded;
        ] );
      ( "engine",
        [
          Alcotest.test_case "runs in order" `Quick test_engine_runs_in_order;
          Alcotest.test_case "nested scheduling" `Quick test_engine_nested_schedule;
          Alcotest.test_case "run_until horizon" `Quick test_engine_run_until;
          Alcotest.test_case "cancel" `Quick test_engine_cancel;
          Alcotest.test_case "negative delay rejected" `Quick test_engine_negative_delay;
          Alcotest.test_case "pending/executed counts" `Quick test_engine_counts;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "bounds respected" `Quick test_rng_bounds;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
          Alcotest.test_case "shuffle is a permutation" `Quick test_rng_shuffle_permutation;
          Alcotest.test_case "zero bound rejected" `Quick test_rng_zero_bound;
        ] );
      ( "stats",
        [
          Alcotest.test_case "counters and totals" `Quick test_stats_counters;
          Alcotest.test_case "distributions" `Quick test_stats_distribution;
          Alcotest.test_case "reset and keys" `Quick test_stats_reset_and_keys;
        ] );
      ( "trace",
        [
          Alcotest.test_case "disabled by default" `Quick test_trace_disabled_by_default;
          Alcotest.test_case "records and emitf" `Quick test_trace_records;
          Alcotest.test_case "capacity bound" `Quick test_trace_capacity;
        ] );
    ]
