(* Tests for the §2 semantics checker: hand-built histories with known
   verdicts, exercising each rule both ways. *)

open Paso

let uid i = Uid.make ~machine:0 ~serial:i
let obj i fields = Pobj.make ~uid:(uid i) fields
let vi i = Value.Int i
let vs s = Value.Sym s
let tmpl_any = Template.headed "k" [ Template.Any ]

let rules vs = List.sort_uniq compare (List.map (fun v -> v.Semantics.rule) vs)

(* A legal little history: insert completes, read returns the object,
   read&del removes it, later read fails. *)
let test_clean_history () =
  let h = History.create () in
  let o = obj 1 [ vs "k"; vi 1 ] in
  (* insert on machine 0, t = 0..10 *)
  let r_ins = History.begin_op h ~machine:0 ~kind:History.Insert ~obj:o ~now:0.0 () in
  History.note_inserted h o ~cls:"c" ~now:0.0;
  History.note_first_store h (Pobj.uid o) ~now:5.0;
  History.note_all_stored h (Pobj.uid o) ~now:9.0;
  History.end_op h r_ins ~now:10.0 ~result:None;
  (* read at 20..25 returns it *)
  let r_read = History.begin_op h ~machine:1 ~kind:History.Read ~template:tmpl_any ~now:20.0 () in
  History.end_op h r_read ~now:25.0 ~result:(Some o);
  (* read&del at 30..40 *)
  let r_del =
    History.begin_op h ~machine:2 ~kind:History.Read_del ~template:tmpl_any ~now:30.0 ()
  in
  History.note_removal h (Pobj.uid o) ~now:35.0;
  History.note_remove_ret h (Pobj.uid o) ~op_id:r_del.History.op_id ~now:40.0;
  History.end_op h r_del ~now:40.0 ~result:(Some o);
  (* later read fails, legally *)
  let r_miss = History.begin_op h ~machine:3 ~kind:History.Read ~template:tmpl_any ~now:50.0 () in
  History.end_op h r_miss ~now:55.0 ~result:None;
  Alcotest.(check (list string)) "clean" [] (rules (Semantics.check h))

let test_illegal_fail_detected () =
  let h = History.create () in
  let o = obj 1 [ vs "k"; vi 1 ] in
  let r_ins = History.begin_op h ~machine:0 ~kind:History.Insert ~obj:o ~now:0.0 () in
  History.note_inserted h o ~cls:"c" ~now:0.0;
  History.note_first_store h (Pobj.uid o) ~now:2.0;
  History.note_all_stored h (Pobj.uid o) ~now:4.0;
  History.end_op h r_ins ~now:5.0 ~result:None;
  (* Read issued well after the insert completed, object never removed,
     yet the read fails: illegal. *)
  let r = History.begin_op h ~machine:1 ~kind:History.Read ~template:tmpl_any ~now:10.0 () in
  History.end_op h r ~now:12.0 ~result:None;
  Alcotest.(check (list string)) "fail-legality" [ "fail-legality" ]
    (rules (Semantics.check h))

let test_fail_legal_when_concurrent_with_insert () =
  let h = History.create () in
  let o = obj 1 [ vs "k"; vi 1 ] in
  let r_ins = History.begin_op h ~machine:0 ~kind:History.Insert ~obj:o ~now:0.0 () in
  History.note_inserted h o ~cls:"c" ~now:0.0;
  History.note_first_store h (Pobj.uid o) ~now:8.0;
  History.note_all_stored h (Pobj.uid o) ~now:11.0;
  History.end_op h r_ins ~now:12.0 ~result:None;
  (* Read overlaps the insert: fail is permitted. *)
  let r = History.begin_op h ~machine:1 ~kind:History.Read ~template:tmpl_any ~now:7.0 () in
  History.end_op h r ~now:9.0 ~result:None;
  Alcotest.(check (list string)) "no violation" [] (rules (Semantics.check h))

let test_fail_legal_when_removed_concurrently () =
  let h = History.create () in
  let o = obj 1 [ vs "k"; vi 1 ] in
  let r_ins = History.begin_op h ~machine:0 ~kind:History.Insert ~obj:o ~now:0.0 () in
  History.note_inserted h o ~cls:"c" ~now:0.0;
  History.note_first_store h (Pobj.uid o) ~now:1.0;
  History.note_all_stored h (Pobj.uid o) ~now:2.0;
  History.end_op h r_ins ~now:2.0 ~result:None;
  let r_del = History.begin_op h ~machine:2 ~kind:History.Read_del ~template:tmpl_any ~now:5.0 () in
  History.note_removal h (Pobj.uid o) ~now:8.0;
  History.note_remove_ret h (Pobj.uid o) ~op_id:r_del.History.op_id ~now:9.0;
  History.end_op h r_del ~now:9.0 ~result:(Some o);
  (* Read overlapping the removal may fail. *)
  let r = History.begin_op h ~machine:1 ~kind:History.Read ~template:tmpl_any ~now:7.0 () in
  History.end_op h r ~now:10.0 ~result:None;
  Alcotest.(check (list string)) "no violation" [] (rules (Semantics.check h))

let test_return_of_never_inserted () =
  let h = History.create () in
  let ghost = obj 99 [ vs "k"; vi 9 ] in
  let r = History.begin_op h ~machine:1 ~kind:History.Read ~template:tmpl_any ~now:0.0 () in
  History.end_op h r ~now:1.0 ~result:(Some ghost);
  Alcotest.(check bool) "flagged" true
    (List.mem "A2-insert-first" (rules (Semantics.check h)))

let test_return_not_matching () =
  let h = History.create () in
  let o = obj 1 [ vs "other"; vi 1 ] in
  let r_ins = History.begin_op h ~machine:0 ~kind:History.Insert ~obj:o ~now:0.0 () in
  History.note_inserted h o ~cls:"c" ~now:0.0;
  History.end_op h r_ins ~now:1.0 ~result:None;
  let r = History.begin_op h ~machine:1 ~kind:History.Read ~template:tmpl_any ~now:2.0 () in
  History.end_op h r ~now:3.0 ~result:(Some o);
  Alcotest.(check bool) "flagged" true
    (List.mem "return-matches" (rules (Semantics.check h)))

let test_double_removal_detected () =
  let h = History.create () in
  let o = obj 1 [ vs "k"; vi 1 ] in
  let r_ins = History.begin_op h ~machine:0 ~kind:History.Insert ~obj:o ~now:0.0 () in
  History.note_inserted h o ~cls:"c" ~now:0.0;
  History.end_op h r_ins ~now:1.0 ~result:None;
  let take now =
    let r = History.begin_op h ~machine:1 ~kind:History.Read_del ~template:tmpl_any ~now () in
    History.note_removal h (Pobj.uid o) ~now:(now +. 1.0);
    History.note_remove_ret h (Pobj.uid o) ~op_id:r.History.op_id ~now:(now +. 2.0);
    History.end_op h r ~now:(now +. 2.0) ~result:(Some o)
  in
  take 10.0;
  take 20.0;
  Alcotest.(check bool) "flagged" true
    (List.mem "A2-unique-removal" (rules (Semantics.check h)))

let test_read_of_dead_object () =
  let h = History.create () in
  let o = obj 1 [ vs "k"; vi 1 ] in
  let r_ins = History.begin_op h ~machine:0 ~kind:History.Insert ~obj:o ~now:0.0 () in
  History.note_inserted h o ~cls:"c" ~now:0.0;
  History.note_first_store h (Pobj.uid o) ~now:1.0;
  History.note_all_stored h (Pobj.uid o) ~now:2.0;
  History.end_op h r_ins ~now:2.0 ~result:None;
  let r_del = History.begin_op h ~machine:2 ~kind:History.Read_del ~template:tmpl_any ~now:5.0 () in
  History.note_removal h (Pobj.uid o) ~now:6.0;
  History.note_remove_ret h (Pobj.uid o) ~op_id:r_del.History.op_id ~now:7.0;
  History.end_op h r_del ~now:7.0 ~result:(Some o);
  (* A read issued strictly after the remover returned must not see o. *)
  let r = History.begin_op h ~machine:1 ~kind:History.Read ~template:tmpl_any ~now:20.0 () in
  History.end_op h r ~now:22.0 ~result:(Some o);
  Alcotest.(check bool) "flagged" true (List.mem "read-alive" (rules (Semantics.check h)))

let test_removal_before_issue_detected () =
  let h = History.create () in
  let o = obj 1 [ vs "k"; vi 1 ] in
  let r_ins = History.begin_op h ~machine:0 ~kind:History.Insert ~obj:o ~now:0.0 () in
  History.note_inserted h o ~cls:"c" ~now:0.0;
  History.note_first_store h (Pobj.uid o) ~now:1.0;
  History.end_op h r_ins ~now:1.0 ~result:None;
  (* Removal event precedes the read&del's issue — the object cannot
     have died on behalf of this op. *)
  History.note_removal h (Pobj.uid o) ~now:3.0;
  let r_del = History.begin_op h ~machine:2 ~kind:History.Read_del ~template:tmpl_any ~now:5.0 () in
  History.note_remove_ret h (Pobj.uid o) ~op_id:r_del.History.op_id ~now:6.0;
  History.end_op h r_del ~now:6.0 ~result:(Some o);
  Alcotest.(check bool) "flagged" true
    (List.mem "readdel-dies-after-issue" (rules (Semantics.check h)))

let test_class_loss_excuses_fail () =
  let h = History.create () in
  let o = obj 1 [ vs "k"; vi 1 ] in
  let r_ins = History.begin_op h ~machine:0 ~kind:History.Insert ~obj:o ~now:0.0 () in
  History.note_inserted h o ~cls:"c" ~now:0.0;
  History.note_first_store h (Pobj.uid o) ~now:1.0;
  History.note_all_stored h (Pobj.uid o) ~now:2.0;
  History.end_op h r_ins ~now:2.0 ~result:None;
  (* All replicas of class "c" crash at t = 5. *)
  History.note_class_lost h ~cls:"c" ~now:5.0;
  let r = History.begin_op h ~machine:1 ~kind:History.Read ~template:tmpl_any ~now:10.0 () in
  History.end_op h r ~now:12.0 ~result:None;
  Alcotest.(check (list string)) "loss excuses fail" [] (rules (Semantics.check h))

let test_outstanding_ops_skipped () =
  let h = History.create () in
  let o = obj 1 [ vs "k"; vi 1 ] in
  ignore (History.begin_op h ~machine:0 ~kind:History.Insert ~obj:o ~now:0.0 ());
  History.note_inserted h o ~cls:"c" ~now:0.0;
  (* A read that never returns (machine crashed): no verdict. *)
  ignore (History.begin_op h ~machine:1 ~kind:History.Read ~template:tmpl_any ~now:5.0 ());
  Alcotest.(check (list string)) "no violations for outstanding ops" []
    (rules (Semantics.check h))

let test_history_accessors () =
  let h = History.create () in
  let o = obj 1 [ vs "k"; vi 1 ] in
  let r = History.begin_op h ~machine:0 ~kind:History.Insert ~obj:o ~now:0.0 () in
  Alcotest.(check int) "op_count" 1 (History.op_count h);
  Alcotest.(check int) "completed 0" 0 (History.completed_ops h);
  History.end_op h r ~now:1.0 ~result:None;
  Alcotest.(check int) "completed 1" 1 (History.completed_ops h);
  History.note_inserted h o ~cls:"c" ~now:0.0;
  Alcotest.(check bool) "lifecycle exists" true (History.lifecycle h (uid 1) <> None);
  Alcotest.(check int) "lifecycles" 1 (List.length (History.lifecycles h))

let () =
  Alcotest.run "semantics"
    [
      ( "checker",
        [
          Alcotest.test_case "clean history" `Quick test_clean_history;
          Alcotest.test_case "illegal fail detected" `Quick test_illegal_fail_detected;
          Alcotest.test_case "fail legal while insert in flight" `Quick
            test_fail_legal_when_concurrent_with_insert;
          Alcotest.test_case "fail legal while removal in flight" `Quick
            test_fail_legal_when_removed_concurrently;
          Alcotest.test_case "ghost return detected" `Quick test_return_of_never_inserted;
          Alcotest.test_case "non-matching return detected" `Quick test_return_not_matching;
          Alcotest.test_case "double removal detected" `Quick test_double_removal_detected;
          Alcotest.test_case "read of dead object detected" `Quick test_read_of_dead_object;
          Alcotest.test_case "pre-issue removal detected" `Quick
            test_removal_before_issue_detected;
          Alcotest.test_case "class loss excuses fail" `Quick test_class_loss_excuses_fail;
          Alcotest.test_case "outstanding ops skipped" `Quick test_outstanding_ops_skipped;
        ] );
      ("history", [ Alcotest.test_case "accessors" `Quick test_history_accessors ]);
    ]
