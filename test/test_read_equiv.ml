(* Read-path equivalence suite: single-replica fast reads are a cost
   optimisation, not a semantic change, and the snapshot primitive is
   an atomic multi-class read. For random schedules the same step list
   is replayed twice — fast reads off and on — and the two runs are
   compared; a separate oracle property checks every snapshot issued at
   quiescence against the replica contents a direct scan would see.

   Three properties, each across three network modes (lan, wan with 2
   clusters, gcast batching with tight knobs):

   - "paced" (strong equivalence): operations are quiesced before the
     next step is issued, so no read races a mutation and the freshness
     token never moves mid-flight. Fast reads on must then produce the
     SAME per-op results, the same final replica contents, a clean
     invariant pack, and a total msg-cost no higher than fast reads off
     (one-member fan-outs strictly shrink the wire bill).

   - "concurrent" (verdict equivalence): raw fuzz-style schedules with
     races, crashes, recoveries and interleaved snapshots. Timing now
     legally changes individual outcomes, so the comparison is the one
     the correctness argument needs: both runs satisfy the full
     invariant pack — including snapshot atomicity — identically
     (clean).

   - "snapshot oracle": after the run drains, an atomic multi-class
     scan is issued at quiescence and every per-class component is
     checked against the lowest operational replica: [None] iff no held
     object matches, [Some o] only for a held, matching object — i.e.
     the snapshot equals a quiescent multi-class read.

   Together the properties run >= 500 random schedules across the 3
   modes (3 x (30 paced + 100 concurrent + 40 oracle) = 510). *)

open Paso
module Schedule = Check.Schedule

type mode = { m_name : string; m_config : Schedule.config }

let modes =
  let base = { Schedule.default with Schedule.seed = 6 } in
  [
    { m_name = "lan"; m_config = base };
    { m_name = "wan"; m_config = { base with Schedule.wan_clusters = 2 } };
    {
      m_name = "batched";
      m_config =
        { base with Schedule.batch_ops = 8; batch_bytes = 1024; batch_hold = 400.0 };
    };
  ]

let with_fast c = { c with Schedule.fast_read = true }
let run config steps = Check.Runner.run_with_system config steps
let msg_cost sys = Sim.Stats.total (System.stats sys) "net.msg_cost"

let inv_names (o : Check.Runner.outcome) =
  List.sort compare
    (List.map (fun (r : Check.Invariants.report) -> r.Check.Invariants.inv) o.violations)

let pp_violations (o : Check.Runner.outcome) =
  String.concat "; "
    (List.map (fun r -> Format.asprintf "%a" Check.Invariants.pp_report r) o.violations)

(* Every op's observable outcome, in op-id order. *)
let op_results sys =
  List.map
    (fun (r : History.record) ->
      Printf.sprintf "%d/%s/%s" r.History.op_id
        (match r.History.ret_time with None -> "outstanding" | Some _ -> "done")
        (match r.History.result with None -> "-" | Some o -> Pobj.to_string o))
    (History.records (System.history sys))

(* Every replica's store contents after the drain, keyed by class and
   member. *)
let store_fingerprint sys =
  System.known_classes sys
  |> List.map (fun (i : Obj_class.info) ->
         let members =
           System.replicas sys ~cls:i.Obj_class.name
           |> List.map (fun (m, uids) ->
                  Printf.sprintf "%d:[%s]" m
                    (String.concat ","
                       (List.sort compare (List.map Uid.to_string uids))))
           |> List.sort compare
         in
         Printf.sprintf "%s{%s}" i.Obj_class.name (String.concat " " members))
  |> List.sort_uniq compare

(* ---- paced schedules: no read races a mutation ------------------------ *)

let gen_paced =
  QCheck2.Gen.(
    let insert_burst =
      let* m = int_bound 63 in
      let* hs = list_size (int_range 1 4) (int_bound 7) in
      return (List.map (fun h -> Schedule.Insert (m, h)) hs)
    in
    let single =
      let* m = int_bound 63 in
      let* h = int_bound 7 in
      oneofl [ [ Schedule.Read (m, h) ]; [ Schedule.Take (m, h) ] ]
    in
    list_size (int_range 5 25) (oneof [ insert_burst; single ])
    |> map (List.concat_map (fun ops -> ops @ [ Schedule.Advance ])))

let paced_prop mode =
  QCheck2.Test.make
    ~name:(Printf.sprintf "fast reads on == off, paced schedules (%s)" mode.m_name)
    ~count:30 gen_paced
    (fun steps ->
      let off_o, off_sys = run mode.m_config steps in
      let on_o, on_sys = run (with_fast mode.m_config) steps in
      if off_o.Check.Runner.violations <> [] then
        QCheck2.Test.fail_reportf "fast reads off violates invariants: %s"
          (pp_violations off_o);
      if on_o.Check.Runner.violations <> [] then
        QCheck2.Test.fail_reportf "fast reads on violates invariants: %s"
          (pp_violations on_o);
      let off_r = op_results off_sys and on_r = op_results on_sys in
      if off_r <> on_r then
        QCheck2.Test.fail_reportf "per-op results diverge:\n  off: %s\n  on:  %s"
          (String.concat " " off_r) (String.concat " " on_r);
      let off_s = store_fingerprint off_sys and on_s = store_fingerprint on_sys in
      if off_s <> on_s then
        QCheck2.Test.fail_reportf "final stores diverge:\n  off: %s\n  on:  %s"
          (String.concat " " off_s) (String.concat " " on_s);
      (* On the WAN, write-group formation (joins, state transfer) can
         still be in flight when the first read of a class lands; the
         view component of the freshness token then legitimately moves
         mid-read and the transparent fallback buys safety with one
         extra round trip. The cost win is asserted where formation
         noise can't mask it (LAN, batched) and by the read-heavy bench
         gate; here the WAN modes assert semantics only. *)
      if mode.m_name <> "wan" && msg_cost on_sys > msg_cost off_sys then
        QCheck2.Test.fail_reportf "fast reads cost more: %.0f > %.0f" (msg_cost on_sys)
          (msg_cost off_sys);
      true)

(* ---- concurrent schedules: races, faults, interleaved snapshots ------- *)

let gen_concurrent =
  QCheck2.Gen.(
    let step =
      let* m = int_bound 63 in
      let* h = int_bound 7 in
      frequencyl
        [
          (3, Schedule.Insert (m, h));
          (3, Schedule.Read (m, h));
          (2, Schedule.Take (m, h));
          (1, Schedule.Snapshot m);
          (1, Schedule.Crash m);
          (1, Schedule.Recover);
          (2, Schedule.Advance);
        ]
    in
    list_size (int_range 10 80) step)

let concurrent_prop mode =
  QCheck2.Test.make
    ~name:
      (Printf.sprintf "fast reads preserve all verdicts, concurrent schedules (%s)"
         mode.m_name)
    ~count:100 gen_concurrent
    (fun steps ->
      let off_o, _ = run mode.m_config steps in
      let on_o, _ = run (with_fast mode.m_config) steps in
      if inv_names off_o <> inv_names on_o then
        QCheck2.Test.fail_reportf "verdicts diverge:\n  off: %s\n  on:  %s"
          (pp_violations off_o) (pp_violations on_o);
      if off_o.Check.Runner.violations <> [] then
        QCheck2.Test.fail_reportf "invariant violations (both runs): %s"
          (pp_violations off_o);
      true)

(* ---- snapshot == a quiescent multi-class read ------------------------- *)

let snap_tmpl = Template.make [ Template.Any; Template.Any ]

(* Compare a snapshot's per-class components against the lowest
   operational replica of each class (at quiescence all replicas agree,
   which replica-consistency separately audits). *)
let oracle_agrees sys result =
  List.for_all
    (fun (cls, resp) ->
      match List.filter (System.is_up sys) (System.write_group sys ~cls) with
      | [] -> resp = None
      | m :: _ -> (
          let snap, _ = System.server_snapshot sys ~machine:m in
          let held =
            match List.assoc_opt cls snap with Some (objs, _, _) -> objs | None -> []
          in
          match resp with
          | None -> not (List.exists (Template.matches snap_tmpl) held)
          | Some o ->
              Template.matches snap_tmpl o
              && List.exists (fun h -> Uid.equal (Pobj.uid h) (Pobj.uid o)) held))
    result

let snapshot_prop mode =
  QCheck2.Test.make
    ~name:(Printf.sprintf "snapshot == quiescent multi-class read (%s)" mode.m_name)
    ~count:40 gen_concurrent
    (fun steps ->
      let _, sys = run (with_fast mode.m_config) steps in
      let captured = ref None in
      System.snapshot sys ~machine:0 snap_tmpl ~on_done:(fun r -> captured := r);
      System.run sys;
      (match !captured with
      | None -> QCheck2.Test.fail_report "quiescent snapshot did not complete"
      | Some result ->
          if not (oracle_agrees sys result) then
            QCheck2.Test.fail_reportf "snapshot diverges from replica contents: %s"
              (String.concat " "
                 (List.map
                    (fun (cls, r) ->
                      Printf.sprintf "%s=%s" cls
                        (match r with None -> "fail" | Some o -> Pobj.to_string o))
                    result)));
      (match Check.Invariants.snapshot_atomicity sys with
      | [] -> ()
      | rs ->
          QCheck2.Test.fail_reportf "snapshot atomicity violated: %s"
            (String.concat "; "
               (List.map (fun r -> Format.asprintf "%a" Check.Invariants.pp_report r) rs)));
      true)

(* Reproducibility: fixed QCheck seed, like test_batch_equiv. *)
let seed = 0x51ef

let () =
  let to_alcotest i p =
    QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| seed; i |]) p
  in
  Alcotest.run "read-equivalence"
    [
      ("paced", List.mapi (fun i m -> to_alcotest i (paced_prop m)) modes);
      ( "concurrent",
        List.mapi (fun i m -> to_alcotest (100 + i) (concurrent_prop m)) modes );
      ( "snapshot",
        List.mapi (fun i m -> to_alcotest (200 + i) (snapshot_prop m)) modes );
    ]
