(* The checking subsystem checked: JSON round-trips, run determinism
   (byte-identical trace digests), artifact save/load/replay, the
   delta-debugging shrinker on a synthetic failure, the failpoint
   registry's arming arithmetic, and mutation tests that corrupt valid
   histories to prove the semantics checker catches each corruption. *)

open Paso
module Failpoint = Check.Failpoint

(* ---- Json ---- *)

let sample_json =
  Check.Json.(
    Obj
      [
        ("null", Null);
        ("t", Bool true);
        ("n", Num 42.0);
        ("f", Num 2.5);
        ("neg", Num (-17.0));
        ("s", Str "with \"quotes\", a \\ backslash,\na newline and a\ttab");
        ("arr", Arr [ Num 1.0; Str "two"; Arr []; Obj [] ]);
      ])

let test_json_roundtrip () =
  let back s =
    match Check.Json.of_string s with
    | Ok v -> v
    | Error e -> Alcotest.failf "parse failed: %s on %s" e s
  in
  Alcotest.(check bool) "compact round-trip" true
    (back (Check.Json.to_string sample_json) = sample_json);
  Alcotest.(check bool) "pretty round-trip" true
    (back (Check.Json.pretty sample_json) = sample_json);
  Alcotest.(check bool) "unicode escape decodes" true
    (back {|"é"|} = Check.Json.Str "\xc3\xa9")

let test_json_rejects () =
  let bad s =
    match Check.Json.of_string s with Ok _ -> Alcotest.failf "accepted %S" s | Error _ -> ()
  in
  bad "";
  bad "{";
  bad "[1,]";
  bad "{\"a\":1} trailing";
  bad "\"unterminated";
  bad "nul"

(* ---- Failpoint registry ---- *)

let test_failpoint_arming () =
  let fps = Failpoint.create () in
  (* disabled registry: hits are free and uncounted *)
  Alcotest.(check bool) "inert hit" true (Failpoint.hit fps ~site:"x" () = Failpoint.Nothing);
  Alcotest.(check int) "inert hits uncounted" 0 (Failpoint.hit_count fps ~site:"x");
  let fired = ref 0 in
  Failpoint.arm fps ~site:"x" ~skip:2 ~times:2 (fun _ ->
      incr fired;
      Failpoint.Delay 5.0);
  let effects = List.init 6 (fun _ -> Failpoint.hit fps ~site:"x" ()) in
  Alcotest.(check int) "skip 2, fire 2, then spent" 2 !fired;
  Alcotest.(check bool) "effect pattern" true
    (effects
    = [
        Failpoint.Nothing;
        Failpoint.Nothing;
        Failpoint.Delay 5.0;
        Failpoint.Delay 5.0;
        Failpoint.Nothing;
        Failpoint.Nothing;
      ]);
  Alcotest.(check int) "armed registry counts hits" 6 (Failpoint.hit_count fps ~site:"x");
  Failpoint.arm fps ~site:"y" (fun _ -> Failpoint.Nothing);
  Alcotest.(check bool) "armed" true (Failpoint.armed fps ~site:"y");
  Failpoint.disarm fps ~site:"y";
  Alcotest.(check bool) "disarmed" false (Failpoint.armed fps ~site:"y")

(* ---- Runner determinism ---- *)

let steps_of_seed seed = Check.Fuzz.gen_steps (Sim.Rng.make seed) ~len:60

let test_runner_determinism () =
  let config = { Check.Schedule.default with seed = 9 } in
  let steps = steps_of_seed 5 in
  let o1 = Check.Runner.run config steps in
  let o2 = Check.Runner.run config steps in
  Alcotest.(check string) "byte-identical traces" o1.Check.Runner.trace_digest
    o2.Check.Runner.trace_digest;
  Alcotest.(check int) "same op counts" o1.Check.Runner.ops o2.Check.Runner.ops;
  Alcotest.(check int) "clean run" 0 (List.length o1.Check.Runner.violations)

(* ---- Artifact round-trip and replay ---- *)

let synthetic_config =
  {
    Check.Schedule.default with
    seed = 3;
    arms =
      [
        {
          Check.Schedule.arm_site = "check.step";
          arm_skip = 5;
          arm_times = 1;
          arm_action = "corrupt-history";
        };
      ];
  }

let test_artifact_roundtrip () =
  let steps = steps_of_seed 7 in
  let o = Check.Runner.run synthetic_config steps in
  Alcotest.(check bool) "synthetic failure fails" true (o.Check.Runner.violations <> []);
  let a = Check.Artifact.of_outcome synthetic_config steps o in
  let file = Filename.temp_file "paso-artifact" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      Check.Artifact.save file a;
      match Check.Artifact.load file with
      | Error e -> Alcotest.failf "load failed: %s" e
      | Ok a' ->
          Alcotest.(check bool) "artifact round-trips" true (a = a');
          (* replay: same schedule, byte-identical trace *)
          let o' = Check.Runner.run a'.a_config a'.a_steps in
          Alcotest.(check string) "replay reproduces the trace"
            a.Check.Artifact.a_trace_digest o'.Check.Runner.trace_digest)

(* ---- Shrinker ---- *)

let test_ddmin_generic () =
  (* failing iff the list contains both 3 and 7 *)
  let failing l = List.mem 3 l && List.mem 7 l in
  let input = List.init 50 Fun.id in
  let reduced = Check.Shrink.ddmin ~failing input in
  Alcotest.(check bool) "still failing" true (failing reduced);
  Alcotest.(check (list int)) "1-minimal" [ 3; 7 ] (List.sort compare reduced)

let test_shrink_synthetic_failure () =
  let steps = steps_of_seed 11 in
  let o = Check.Runner.run synthetic_config steps in
  let sign = Check.Runner.failure_signature o in
  Alcotest.(check bool) "synthetic failure fails" true (sign <> None);
  match Check.Shrink.schedule ~config:synthetic_config ~steps () with
  | None -> Alcotest.fail "shrinker saw no failure"
  | Some steps' ->
      Alcotest.(check bool) "strictly smaller" true
        (List.length steps' < List.length steps);
      let o' = Check.Runner.run synthetic_config steps' in
      Alcotest.(check bool) "still fails the same way" true
        (Check.Runner.failure_signature o' = sign)

(* ---- A small clean campaign over the whole matrix ---- *)

let test_campaign_clean () =
  let failures =
    Check.Fuzz.campaign ~configs:(Check.Fuzz.matrix ()) ~schedules:30 ~seed:1 ()
  in
  Alcotest.(check int) "no failures across the matrix" 0 (List.length failures)

(* Regression: a take issued one step before its class group lost its
   last member used to slip past the issue-time recovery-quorum check
   and execute against the group re-formed from a single recovered
   disk — a disk that was stale (it missed a delivered remove while
   down, though its WAL was intact) — returning an object another take
   had already removed (A2). The exec-time delivery gate now refuses
   the query and the issuer re-parks until λ+1 members have merged
   their remove evidence. Found by the matrix fuzzer (schedule 73,
   seed 42, shrunk); pinned batched and unbatched — the hole predates
   batching. *)
let test_probation_straddle () =
  let config =
    {
      Check.Schedule.default with
      n = 8;
      lambda = 2;
      classing = "head";
      policy = "counter:4";
      durable = true;
      seed = 2755231;
    }
  in
  let steps =
    Check.Schedule.
      [
        Insert (15, 7); Advance; Take (2, 7); Insert (21, 4); Insert (32, 6);
        Crash 60; Crash 14; Take (51, 1); Recover; Take (16, 0); Insert (58, 5);
        Advance; Recover; Crash 38; Take (14, 1); Recover; Crash 7;
      ]
  in
  List.iter
    (fun c ->
      let o = Check.Runner.run c steps in
      Alcotest.(check int)
        (Printf.sprintf "no violations (%s)" (Check.Schedule.label c))
        0
        (List.length o.Check.Runner.violations))
    [ { config with batch_ops = 2; batch_hold = 200.0 }; config ]

(* ---- Mutation tests: corrupt a valid history, the checker must see it ---- *)

let tmpl_a = Template.headed "a" [ Template.Any ]

let sys_with ops =
  let sys = System.create { System.default_config with n = 4; lambda = 1 } in
  List.iter
    (fun op ->
      op sys;
      System.run sys;
      (* put clear virtual time between consecutive ops so lifecycle
         landmarks never tie with the next op's issue *)
      System.run_until sys (System.now sys +. 1000.0))
    ops;
  Alcotest.(check int) "mutation base history is clean" 0
    (List.length (Semantics.check (System.history sys)));
  sys

let insert_op v sys =
  System.insert sys ~machine:0 [ Value.Sym "a"; Value.Int v ] ~on_done:(fun () -> ())

let read_op expect sys =
  System.read sys ~machine:1 tmpl_a ~on_done:(fun r ->
      Alcotest.(check bool) "read outcome" expect (r <> None))

let take_op sys =
  System.read_del sys ~machine:2 tmpl_a ~on_done:(fun r ->
      Alcotest.(check bool) "take returns" true (r <> None))

let rules_of h = List.map (fun (v : Semantics.violation) -> v.rule) (Semantics.check h)

let test_mutate_drop_insert () =
  let sys = sys_with [ insert_op 1; read_op true ] in
  let h = System.history sys in
  Alcotest.(check bool) "mutation applied" true (Check.Mutate.drop_insert h);
  Alcotest.(check bool) "checker flags the vanished insert" true
    (List.mem "A2-insert-first" (rules_of h))

let test_mutate_reorder_return () =
  let sys = sys_with [ insert_op 1; read_op true ] in
  let h = System.history sys in
  Alcotest.(check bool) "mutation applied" true (Check.Mutate.reorder_return h);
  Alcotest.(check bool) "checker flags the time warp" true
    (List.mem "wf-return-order" (rules_of h))

let test_mutate_resurrect () =
  (* insert, take (kills it), then a read that legally fails — the
     mutation makes that read return the corpse *)
  let sys = sys_with [ insert_op 1; take_op; read_op false ] in
  let h = System.history sys in
  Alcotest.(check bool) "mutation applied" true (Check.Mutate.resurrect h);
  Alcotest.(check bool) "checker flags the resurrection" true
    (List.exists
       (fun r -> r = "read-alive" || r = "A2-unique-removal")
       (rules_of h))

let () =
  Alcotest.run "check"
    [
      ( "json",
        [
          Alcotest.test_case "round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "rejects malformed input" `Quick test_json_rejects;
        ] );
      ( "failpoints",
        [ Alcotest.test_case "skip/times arming arithmetic" `Quick test_failpoint_arming ] );
      ( "runner",
        [
          Alcotest.test_case "deterministic replay, identical traces" `Quick
            test_runner_determinism;
        ] );
      ( "artifacts",
        [ Alcotest.test_case "save/load/replay round-trip" `Quick test_artifact_roundtrip ] );
      ( "shrinker",
        [
          Alcotest.test_case "ddmin is 1-minimal on a toy failure" `Quick test_ddmin_generic;
          Alcotest.test_case "shrinks a synthetic failing schedule" `Quick
            test_shrink_synthetic_failure;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "clean sweep across the matrix" `Quick test_campaign_clean;
          Alcotest.test_case "probation straddle regression" `Quick
            test_probation_straddle;
        ] );
      ( "mutations",
        [
          Alcotest.test_case "dropped insert is caught" `Quick test_mutate_drop_insert;
          Alcotest.test_case "reordered return is caught" `Quick test_mutate_reorder_return;
          Alcotest.test_case "resurrected object is caught" `Quick test_mutate_resurrect;
        ] );
    ]
