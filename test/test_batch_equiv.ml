(* Batching-equivalence suite: the gcast batching/coalescing layer is
   a cost optimisation, not a semantic change. For random schedules the
   same step list is replayed twice — batching off and batching on
   (tight knobs, so frames really are cut and held) — and the two runs
   are compared.

   Two properties, each across the four classing strategies:

   - "paced" (strong equivalence): operations are quiesced before the
     next step is issued — bursts of same-machine inserts build real
     multi-op frames, reads and takes run one at a time — so no
     operation races another and timing cannot excuse a difference.
     Batching on must then produce the SAME per-op results, the same
     final replica contents, a clean invariant pack, and a total
     msg-cost no higher than batching off.

   - "concurrent" (verdict equivalence): raw fuzz-style schedules with
     races, crashes and recoveries. Timing differences now legally
     change individual outcomes (a read may overtake an insert it used
     to trail), so the comparison is the one the paper's correctness
     argument needs: both runs must satisfy the full invariant pack —
     the A1–A3 semantics verdicts are identical (clean) — and on
     crash-free schedules batching must still not cost more.

   Together the two properties run >= 500 random schedules across the
   4 strategies (4 x 30 paced + 4 x 100 concurrent = 520). *)

open Paso
module Schedule = Check.Schedule

let base classing =
  { Schedule.default with Schedule.classing; seed = 3 }

(* Tight knobs: 8-op / 1 KiB frames, a 400-unit hold window. Small
   enough that byte and op cuts both fire on burst schedules. *)
let with_batch c =
  { c with Schedule.batch_ops = 8; batch_bytes = 1024; batch_hold = 400.0 }

let run config steps = Check.Runner.run_with_system config steps

let msg_cost sys = Sim.Stats.total (System.stats sys) "net.msg_cost"

let inv_names (o : Check.Runner.outcome) =
  List.sort compare
    (List.map (fun (r : Check.Invariants.report) -> r.Check.Invariants.inv) o.violations)

let pp_violations (o : Check.Runner.outcome) =
  String.concat "; "
    (List.map
       (fun r -> Format.asprintf "%a" Check.Invariants.pp_report r)
       o.violations)

(* Every op's observable outcome, in op-id order. *)
let op_results sys =
  List.map
    (fun (r : History.record) ->
      Printf.sprintf "%d/%s/%s" r.History.op_id
        (match r.History.ret_time with None -> "outstanding" | Some _ -> "done")
        (match r.History.result with None -> "-" | Some o -> Pobj.to_string o))
    (History.records (System.history sys))

(* Every replica's store contents after the drain, keyed by class and
   member. *)
let store_fingerprint sys =
  System.known_classes sys
  |> List.map (fun (i : Obj_class.info) ->
         let members =
           System.replicas sys ~cls:i.Obj_class.name
           |> List.map (fun (m, uids) ->
                  Printf.sprintf "%d:[%s]" m
                    (String.concat ","
                       (List.sort compare (List.map Uid.to_string uids))))
           |> List.sort compare
         in
         Printf.sprintf "%s{%s}" i.Obj_class.name (String.concat " " members))
  |> List.sort compare

(* ---- paced schedules: no op races another ---------------------------- *)

let gen_paced =
  QCheck2.Gen.(
    let insert_burst =
      let* m = int_bound 63 in
      let* hs = list_size (int_range 1 4) (int_bound 7) in
      return (List.map (fun h -> Schedule.Insert (m, h)) hs)
    in
    let single =
      let* m = int_bound 63 in
      let* h = int_bound 7 in
      oneofl [ [ Schedule.Read (m, h) ]; [ Schedule.Take (m, h) ] ]
    in
    list_size (int_range 5 25) (oneof [ insert_burst; single ])
    |> map (List.concat_map (fun ops -> ops @ [ Schedule.Advance ])))

let paced_prop ~classing =
  QCheck2.Test.make
    ~name:(Printf.sprintf "batching on == off, paced schedules (%s classing)" classing)
    ~count:30 gen_paced
    (fun steps ->
      let off_o, off_sys = run (base classing) steps in
      let on_o, on_sys = run (with_batch (base classing)) steps in
      if off_o.Check.Runner.violations <> [] then
        QCheck2.Test.fail_reportf "batching off violates invariants: %s"
          (pp_violations off_o);
      if on_o.Check.Runner.violations <> [] then
        QCheck2.Test.fail_reportf "batching on violates invariants: %s"
          (pp_violations on_o);
      let off_r = op_results off_sys and on_r = op_results on_sys in
      if off_r <> on_r then
        QCheck2.Test.fail_reportf "per-op results diverge:\n  off: %s\n  on:  %s"
          (String.concat " " off_r) (String.concat " " on_r);
      let off_s = store_fingerprint off_sys and on_s = store_fingerprint on_sys in
      if off_s <> on_s then
        QCheck2.Test.fail_reportf "final stores diverge:\n  off: %s\n  on:  %s"
          (String.concat " " off_s) (String.concat " " on_s);
      if msg_cost on_sys > msg_cost off_sys then
        QCheck2.Test.fail_reportf "batching costs more: %.0f > %.0f" (msg_cost on_sys)
          (msg_cost off_sys);
      true)

(* ---- concurrent schedules: fuzz-style races, crashes, recoveries ----- *)

let gen_concurrent =
  QCheck2.Gen.(
    let step =
      let* m = int_bound 63 in
      let* h = int_bound 7 in
      frequencyl
        [
          (3, Schedule.Insert (m, h));
          (3, Schedule.Read (m, h));
          (2, Schedule.Take (m, h));
          (1, Schedule.Crash m);
          (1, Schedule.Recover);
          (2, Schedule.Advance);
        ]
    in
    list_size (int_range 10 80) step)

let has_crash = List.exists (function Schedule.Crash _ -> true | _ -> false)

let concurrent_prop ~classing =
  QCheck2.Test.make
    ~name:
      (Printf.sprintf "batching preserves A1-A3 verdicts, concurrent schedules (%s classing)"
         classing)
    ~count:100 gen_concurrent
    (fun steps ->
      let off_o, off_sys = run (base classing) steps in
      let on_o, on_sys = run (with_batch (base classing)) steps in
      if inv_names off_o <> inv_names on_o then
        QCheck2.Test.fail_reportf "verdicts diverge:\n  off: %s\n  on:  %s"
          (pp_violations off_o) (pp_violations on_o);
      if off_o.Check.Runner.violations <> [] then
        QCheck2.Test.fail_reportf "invariant violations (both runs): %s"
          (pp_violations off_o);
      if (not (has_crash steps)) && msg_cost on_sys > msg_cost off_sys then
        QCheck2.Test.fail_reportf "batching costs more on a crash-free schedule: %.0f > %.0f"
          (msg_cost on_sys) (msg_cost off_sys);
      true)

(* Reproducibility: fixed QCheck seed, like test_convergence. *)
let seed = 0x9a0b

let () =
  let strategies = [ "single"; "arity"; "head"; "signature" ] in
  let to_alcotest i p = QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| seed; i |]) p in
  Alcotest.run "batch-equivalence"
    [
      ( "paced",
        List.mapi (fun i c -> to_alcotest i (paced_prop ~classing:c)) strategies );
      ( "concurrent",
        List.mapi
          (fun i c -> to_alcotest (100 + i) (concurrent_prop ~classing:c))
          strategies );
    ]
