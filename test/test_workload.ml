(* Tests for the workload generators and the live replay driver. *)

open Adaptive

let params ?(n = 6) ?(lambda = 1) ?(k = 4.0) () =
  Model.make_params ~n ~lambda ~basic:(List.init (lambda + 1) Fun.id) ~k ()

(* --- Zipf ---------------------------------------------------------------- *)

let test_zipf_pmf_sums_to_one () =
  let z = Workload.Zipf.create ~n:10 ~s:1.2 in
  let total = List.fold_left (fun acc i -> acc +. Workload.Zipf.pmf z i) 0.0 (List.init 10 Fun.id) in
  Alcotest.(check (float 1e-9)) "pmf total" 1.0 total

let test_zipf_monotone () =
  let z = Workload.Zipf.create ~n:8 ~s:1.0 in
  for i = 0 to 6 do
    Alcotest.(check bool) "decreasing pmf" true
      (Workload.Zipf.pmf z i >= Workload.Zipf.pmf z (i + 1) -. 1e-12)
  done

let test_zipf_skew () =
  let rng = Sim.Rng.make 3 in
  let z = Workload.Zipf.create ~n:20 ~s:1.5 in
  let counts = Array.make 20 0 in
  for _ = 1 to 5000 do
    let i = Workload.Zipf.sample z rng in
    Alcotest.(check bool) "in range" true (i >= 0 && i < 20);
    counts.(i) <- counts.(i) + 1
  done;
  Alcotest.(check bool) "head dominates" true (counts.(0) > counts.(10) * 5)

let test_zipf_uniform_when_s0 () =
  let rng = Sim.Rng.make 4 in
  let z = Workload.Zipf.create ~n:4 ~s:0.0 in
  let counts = Array.make 4 0 in
  for _ = 1 to 4000 do
    counts.(Workload.Zipf.sample z rng) <- counts.(Workload.Zipf.sample z rng) + 1
  done;
  Array.iter (fun c -> Alcotest.(check bool) "roughly uniform" true (c > 300)) counts

(* --- Reqgen -------------------------------------------------------------- *)

let test_uniform_valid () =
  let p = params () in
  let rng = Sim.Rng.make 1 in
  let seq = Workload.Reqgen.uniform rng p ~length:300 ~read_frac:0.7 in
  Alcotest.(check int) "length" 300 (Array.length seq);
  Model.validate_sequence p seq;
  let reads =
    Array.fold_left (fun acc e -> match e with Model.Read _ -> acc + 1 | _ -> acc) 0 seq
  in
  Alcotest.(check bool) "read fraction plausible" true (reads > 150 && reads < 280)

let test_hotspot_valid_and_skewed () =
  let p = params ~n:10 () in
  let rng = Sim.Rng.make 2 in
  let seq = Workload.Reqgen.hotspot rng p ~length:1000 ~read_frac:0.8 ~zipf_s:1.5 in
  Model.validate_sequence p seq;
  let counts = Array.make 10 0 in
  Array.iter
    (fun e -> match e with Model.Read m | Model.Update m -> counts.(m) <- counts.(m) + 1 | _ -> ())
    seq;
  Array.sort compare counts;
  Alcotest.(check bool) "skew present" true (counts.(9) > 3 * counts.(0))

let test_phased_structure () =
  let p = params ~n:6 ~lambda:1 () in
  let rng = Sim.Rng.make 5 in
  let seq = Workload.Reqgen.phased rng p ~phases:4 ~phase_len:50 ~read_frac:1.0 in
  Alcotest.(check int) "length" 200 (Array.length seq);
  Model.validate_sequence p seq;
  (* With read_frac 1.0, each phase is one machine reading. *)
  let phase_reader ph =
    match seq.(ph * 50) with Model.Read m -> m | _ -> Alcotest.fail "expected read"
  in
  Alcotest.(check bool) "hot seat moves" true (phase_reader 0 <> phase_reader 1)

let test_rent_to_buy_structure () =
  let p = params ~n:4 ~lambda:1 ~k:6.0 () in
  let seq = Workload.Reqgen.rent_to_buy_adversary p ~cycles:3 in
  Model.validate_sequence p seq;
  (* K=6, remote read adds 2: 3 reads then 6 updates per cycle. *)
  Alcotest.(check int) "cycle length" 27 (Array.length seq);
  (match seq.(0) with
  | Model.Read m -> Alcotest.(check bool) "victim non-basic" true (m >= 2)
  | _ -> Alcotest.fail "expected read first")

let test_with_failures_valid () =
  let p = params ~n:6 ~lambda:2 () in
  let rng = Sim.Rng.make 7 in
  let base = Workload.Reqgen.uniform rng p ~length:200 ~read_frac:0.5 in
  let seq = Workload.Reqgen.with_failures rng p ~fail_every:20 ~down_for:10 base in
  Model.validate_sequence p seq;
  let fails =
    Array.fold_left (fun acc e -> match e with Model.Fail _ -> acc + 1 | _ -> acc) 0 seq
  in
  Alcotest.(check bool) "failures injected" true (fails > 0)

(* --- Faultgen ------------------------------------------------------------- *)

let test_periodic_faults () =
  let faults = Workload.Faultgen.periodic ~n:6 ~lambda:2 ~horizon:10000.0 ~period:1000.0 ~down_time:500.0 in
  Alcotest.(check bool) "nonempty" true (faults <> []);
  let sorted = List.for_all2 (fun a b -> a.Workload.Faultgen.at <= b.Workload.Faultgen.at)
      (List.filteri (fun i _ -> i < List.length faults - 1) faults)
      (List.tl faults)
  in
  Alcotest.(check bool) "sorted" true sorted

let test_random_faults_respect_lambda () =
  let rng = Sim.Rng.make 9 in
  let faults = Workload.Faultgen.random rng ~n:8 ~lambda:2 ~horizon:100000.0 ~mtbf:2000.0 ~mttr:5000.0 in
  (* Replay and check the down-count never exceeds λ. *)
  let down = Hashtbl.create 8 in
  let max_down = ref 0 in
  List.iter
    (fun f ->
      (match f.Workload.Faultgen.action with
      | `Crash m -> Hashtbl.replace down m ()
      | `Recover m -> Hashtbl.remove down m);
      max_down := max !max_down (Hashtbl.length down))
    faults;
  Alcotest.(check bool) "at most lambda down" true (!max_down <= 2)

(* Replay a fault list, returning (max simultaneous down, crash count). *)
let fault_profile faults =
  let down = Hashtbl.create 8 in
  let max_down = ref 0 in
  let crashes = ref 0 in
  List.iter
    (fun f ->
      (match f.Workload.Faultgen.action with
      | `Crash m ->
          incr crashes;
          Hashtbl.replace down m ()
      | `Recover m -> Hashtbl.remove down m);
      max_down := max !max_down (Hashtbl.length down))
    faults;
  (!max_down, !crashes)

let test_random_faults_defer () =
  (* A fault process far hotter than the repair rate (mtbf ≪ mttr):
     [`Skip] drops most arrivals, [`Defer] queues them — same bound,
     more crashes. Same seed for a paired comparison. *)
  let gen over_lambda =
    Workload.Faultgen.random ~over_lambda (Sim.Rng.make 13) ~n:8 ~lambda:2
      ~horizon:100000.0 ~mtbf:500.0 ~mttr:20000.0
  in
  let skip_down, skip_crashes = fault_profile (gen `Skip) in
  let defer_down, defer_crashes = fault_profile (gen `Defer) in
  Alcotest.(check bool) "skip respects λ" true (skip_down <= 2);
  Alcotest.(check bool) "defer respects λ" true (defer_down <= 2);
  Alcotest.(check bool) "both modes crash" true (skip_crashes > 0 && defer_crashes > 0);
  (* a deferred crash lands exactly at the recovery instant that makes
     it legal — the signature [`Skip] can (almost surely) never show,
     since its crash times are raw exponential arrivals *)
  let coincident faults =
    let recoveries =
      List.filter_map
        (fun f ->
          match f.Workload.Faultgen.action with
          | `Recover _ -> Some f.Workload.Faultgen.at
          | `Crash _ -> None)
        faults
    in
    List.exists
      (fun f ->
        match f.Workload.Faultgen.action with
        | `Crash _ -> List.mem f.Workload.Faultgen.at recoveries
        | `Recover _ -> false)
      faults
  in
  Alcotest.(check bool) "defer queues to recovery instants" true (coincident (gen `Defer));
  Alcotest.(check bool) "skip never does" false (coincident (gen `Skip));
  (* still sorted, still paired *)
  let faults = gen `Defer in
  Alcotest.(check bool) "sorted" true
    (List.for_all2
       (fun a b -> a.Workload.Faultgen.at <= b.Workload.Faultgen.at)
       (List.filteri (fun i _ -> i < List.length faults - 1) faults)
       (List.tl faults))

let test_blackout_schedule () =
  let faults = Workload.Faultgen.blackout ~n:4 ~at:1000.0 ~outage:500.0 ~stagger:10.0 () in
  let max_down, crashes = fault_profile faults in
  Alcotest.(check int) "all machines crash" 4 crashes;
  Alcotest.(check int) "total blackout" 4 max_down;
  List.iter
    (fun f ->
      match f.Workload.Faultgen.action with
      | `Crash _ -> Alcotest.(check (float 0.0)) "simultaneous crash" 1000.0 f.Workload.Faultgen.at
      | `Recover m ->
          Alcotest.(check (float 0.0))
            (Printf.sprintf "staggered recovery %d" m)
            (1500.0 +. (10.0 *. float_of_int m))
            f.Workload.Faultgen.at)
    faults

let test_apply_faults_to_system () =
  let sys = Paso.System.create { Paso.System.default_config with n = 6; lambda = 2 } in
  Workload.Faultgen.apply sys
    [
      { Workload.Faultgen.at = 100.0; action = `Crash 3 };
      { Workload.Faultgen.at = 20000.0; action = `Recover 3 };
    ];
  Paso.System.run_until sys 500.0;
  Alcotest.(check bool) "crashed" false (Paso.System.is_up sys 3);
  Paso.System.run sys;
  Alcotest.(check bool) "recovered" true (Paso.System.is_up sys 3)

(* --- Live driver ----------------------------------------------------------- *)

let test_replay_runs_everything () =
  let sys = Paso.System.create { Paso.System.default_config with n = 6; lambda = 1 } in
  let events =
    [| Model.Read 2; Model.Update 3; Model.Read 4; Model.Update 0; Model.Read 2 |]
  in
  let o = Workload.Live_driver.replay sys ~head:"job" events in
  Alcotest.(check int) "ops run" 5 o.Workload.Live_driver.ops_run;
  Alcotest.(check int) "none skipped" 0 o.Workload.Live_driver.ops_skipped;
  Alcotest.(check bool) "messages flowed" true (o.Workload.Live_driver.messages > 0);
  Alcotest.(check bool) "work done" true (o.Workload.Live_driver.work > 0.0);
  let violations = Paso.Semantics.check (Paso.System.history sys) in
  Alcotest.(check int) "semantics clean" 0 (List.length violations)

let test_replay_with_failures () =
  let sys = Paso.System.create { Paso.System.default_config with n = 6; lambda = 2 } in
  (* Determine B(C) by a probe insert in a scratch system with the same
     seed/config: basic support is a pure function of the class. *)
  let basic = Paso.System.basic_support sys ~cls:"h/2/sym:job" in
  let victim = List.hd basic in
  let events =
    [|
      Model.Update 0;
      Model.Fail victim;
      Model.Read ((victim + 1) mod 6);
      Model.Recover victim;
      Model.Read ((victim + 2) mod 6);
    |]
  in
  let o = Workload.Live_driver.replay sys ~head:"job" events in
  Alcotest.(check bool) "ran the reads" true (o.Workload.Live_driver.ops_run >= 3);
  Alcotest.(check int) "semantics clean" 0
    (List.length (Paso.Semantics.check (Paso.System.history sys)))

let () =
  Alcotest.run "workload"
    [
      ( "zipf",
        [
          Alcotest.test_case "pmf sums to one" `Quick test_zipf_pmf_sums_to_one;
          Alcotest.test_case "pmf monotone" `Quick test_zipf_monotone;
          Alcotest.test_case "samples skewed" `Quick test_zipf_skew;
          Alcotest.test_case "s=0 uniform" `Quick test_zipf_uniform_when_s0;
        ] );
      ( "reqgen",
        [
          Alcotest.test_case "uniform valid" `Quick test_uniform_valid;
          Alcotest.test_case "hotspot skewed" `Quick test_hotspot_valid_and_skewed;
          Alcotest.test_case "phased structure" `Quick test_phased_structure;
          Alcotest.test_case "rent-to-buy structure" `Quick test_rent_to_buy_structure;
          Alcotest.test_case "failure injection valid" `Quick test_with_failures_valid;
        ] );
      ( "faultgen",
        [
          Alcotest.test_case "periodic schedule" `Quick test_periodic_faults;
          Alcotest.test_case "random respects lambda" `Quick test_random_faults_respect_lambda;
          Alcotest.test_case "defer queues over-λ crashes" `Quick test_random_faults_defer;
          Alcotest.test_case "blackout schedule" `Quick test_blackout_schedule;
          Alcotest.test_case "apply to system" `Quick test_apply_faults_to_system;
        ] );
      ( "live_driver",
        [
          Alcotest.test_case "replay runs everything" `Quick test_replay_runs_everything;
          Alcotest.test_case "replay with failures" `Quick test_replay_with_failures;
        ] );
    ]
