(* Tests for search criteria (templates). *)

open Paso

let uid = Uid.make ~machine:0 ~serial:0
let obj fields = Pobj.make ~uid fields
let vi i = Value.Int i
let vs s = Value.Sym s

let test_exact_match () =
  let t = Template.exact [ vs "a"; vi 1 ] in
  Alcotest.(check bool) "matches" true (Template.matches t (obj [ vs "a"; vi 1 ]));
  Alcotest.(check bool) "value mismatch" false (Template.matches t (obj [ vs "a"; vi 2 ]));
  Alcotest.(check bool) "arity mismatch" false (Template.matches t (obj [ vs "a" ]))

let test_any_and_type () =
  let t = Template.make [ Template.Any; Template.Type_is "int" ] in
  Alcotest.(check bool) "wildcard + type" true (Template.matches t (obj [ vs "x"; vi 3 ]));
  Alcotest.(check bool) "wrong type" false
    (Template.matches t (obj [ vs "x"; Value.Str "3" ]))

let test_range () =
  let t = Template.make [ Template.Range (vi 10, vi 20) ] in
  Alcotest.(check bool) "inside" true (Template.matches t (obj [ vi 15 ]));
  Alcotest.(check bool) "lower bound inclusive" true (Template.matches t (obj [ vi 10 ]));
  Alcotest.(check bool) "upper bound inclusive" true (Template.matches t (obj [ vi 20 ]));
  Alcotest.(check bool) "below" false (Template.matches t (obj [ vi 9 ]));
  Alcotest.(check bool) "above" false (Template.matches t (obj [ vi 21 ]));
  Alcotest.(check bool) "different type never in range" false
    (Template.matches t (obj [ Value.Str "15" ]))

let test_range_validation () =
  Alcotest.check_raises "mixed types"
    (Invalid_argument "Template: range endpoints of different types") (fun () ->
      ignore (Template.make [ Template.Range (vi 1, Value.Str "2") ]));
  Alcotest.check_raises "inverted"
    (Invalid_argument "Template: empty range (lo > hi)") (fun () ->
      ignore (Template.make [ Template.Range (vi 2, vi 1) ]))

let test_field_predicate () =
  let even = Template.Pred ("even", function Value.Int i -> i mod 2 = 0 | _ -> false) in
  let t = Template.make [ even ] in
  Alcotest.(check bool) "even" true (Template.matches t (obj [ vi 4 ]));
  Alcotest.(check bool) "odd" false (Template.matches t (obj [ vi 5 ]))

let test_where_clause () =
  let t =
    Template.make
      ~where:
        ( "sum<10",
          fun o ->
            match (Pobj.field o 0, Pobj.field o 1) with
            | Value.Int a, Value.Int b -> a + b < 10
            | _ -> false )
      [ Template.Type_is "int"; Template.Type_is "int" ]
  in
  Alcotest.(check bool) "where holds" true (Template.matches t (obj [ vi 3; vi 4 ]));
  Alcotest.(check bool) "where fails" false (Template.matches t (obj [ vi 6; vi 6 ]))

let test_headed () =
  let t = Template.headed "task" [ Template.Any ] in
  Alcotest.(check bool) "headed match" true (Template.matches t (obj [ vs "task"; vi 1 ]));
  Alcotest.(check bool) "other head" false (Template.matches t (obj [ vs "other"; vi 1 ]))

let test_empty_rejected () =
  Alcotest.check_raises "empty" (Invalid_argument "Template.make: empty spec list")
    (fun () -> ignore (Template.make []))

let test_size_grows_with_content () =
  let small = Template.make [ Template.Any ] in
  let big = Template.make [ Template.Eq (Value.Str (String.make 100 'x')); Template.Any ] in
  Alcotest.(check bool) "bigger template bigger wire size" true
    (Template.size big > Template.size small)

(* Property: an all-Eq template built from an object's fields matches it. *)
let gen_fields =
  QCheck2.Gen.(
    list_size (int_range 1 6)
      (oneof
         [
           map (fun i -> Value.Int i) small_int;
           map (fun s -> Value.Sym s) (small_string ?gen:None);
           map (fun b -> Value.Bool b) bool;
         ]))

let prop_exact_self_match =
  QCheck2.Test.make ~name:"exact template matches its own object" ~count:300 gen_fields
    (fun fields ->
      let o = obj fields in
      Template.matches (Template.exact fields) o)

(* Property: widening any spec to Any preserves matching. *)
let prop_widening =
  QCheck2.Test.make ~name:"widening a spec to Any preserves match" ~count:300
    QCheck2.Gen.(pair gen_fields (int_bound 5))
    (fun (fields, idx) ->
      let o = obj fields in
      let specs = List.map (fun v -> Template.Eq v) fields in
      let idx = idx mod List.length specs in
      let widened = List.mapi (fun i s -> if i = idx then Template.Any else s) specs in
      Template.matches (Template.make widened) o)

let () =
  Alcotest.run "template"
    [
      ( "matching",
        [
          Alcotest.test_case "exact" `Quick test_exact_match;
          Alcotest.test_case "wildcard and type" `Quick test_any_and_type;
          Alcotest.test_case "ranges" `Quick test_range;
          Alcotest.test_case "range validation" `Quick test_range_validation;
          Alcotest.test_case "field predicates" `Quick test_field_predicate;
          Alcotest.test_case "where clause" `Quick test_where_clause;
          Alcotest.test_case "headed convenience" `Quick test_headed;
          Alcotest.test_case "empty rejected" `Quick test_empty_rejected;
          Alcotest.test_case "wire size" `Quick test_size_grows_with_content;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_exact_self_match;
          QCheck_alcotest.to_alcotest prop_widening;
        ] );
    ]
